// Package network simulates the system model of Section 2: n asynchronous
// sequential processes exchanging messages over a reliable fully-connected
// point-to-point network. Message delays are unbounded but finite; at each
// step exactly one in-flight message is delivered, chosen by a pluggable
// Scheduler (the adversary). Up to t processes may be Byzantine: they are
// ordinary Process implementations free to send arbitrary messages.
//
// The package drives the *executable* DBFT implementation of internal/dbft,
// cross-validating the threshold-automata models: agreement and validity
// hold for every schedule when f <= t, termination holds under the fairness
// assumption of Section 3.3, and both fail in the regimes the paper
// identifies (f > n/3, unfair schedules — Appendix B).
//
// Two message stores back the System. The default is an event bus — a
// broker over bounded per-peer FIFO queues with arrival stamps, optional
// replay filtering (dupemap), stall detection, topic subscriptions and
// pluggable topologies — which also scales to thousands of replicas via its
// native window-drain mode (see bus.go). The legacy flat in-flight slice
// survives as BackendFlat, the compatibility shim the byte-identity tests
// replay against: for any seeded run the bus's arrival-ordered view is, by
// construction, entry-for-entry the flat slice, so schedulers, traces and
// fault logs are identical across backends.
package network

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
)

// ProcID identifies a process (0-based).
type ProcID int

// MsgKind distinguishes the two message types of Algorithm 1.
type MsgKind string

// Message kinds.
const (
	// MsgBV is a binary-value broadcast message (Fig. 1): carries Value.
	MsgBV MsgKind = "BV"
	// MsgAux is an auxiliary message (Alg. 1 line 8): carries Set, the
	// sender's contestants at broadcast time.
	MsgAux MsgKind = "AUX"
	// MsgProp, MsgEcho and MsgReady implement the Bracha reliable broadcast
	// used by the vector consensus for proposals: they carry Proposer and
	// Payload.
	MsgProp  MsgKind = "PROP"
	MsgEcho  MsgKind = "ECHO"
	MsgReady MsgKind = "READY"
	// MsgVote and MsgCand are the two message types of the SBA* binary
	// reduction (internal/sba): a step-1 vote and a step-2 candidate. Both
	// carry Value.
	MsgVote MsgKind = "VOTE"
	MsgCand MsgKind = "CAND"
)

// Message is a point-to-point message. Round tags implement
// communication-closure: receivers buffer future rounds and never act on
// past ones.
type Message struct {
	From  ProcID
	To    ProcID
	Round int
	Kind  MsgKind
	Value int   // MsgBV
	Set   []int // MsgAux (sorted)

	// Instance multiplexes independent protocol instances over one network
	// (the vector consensus runs one binary consensus per proposer).
	Instance int
	// Proposer and Payload carry reliable-broadcast content
	// (MsgProp/MsgEcho/MsgReady).
	Proposer ProcID
	Payload  string

	// Seq tags one enqueued copy of a message. The base reliable network
	// leaves it zero; a fault layer installed via SendTap may stamp it to
	// track per-copy metadata (delays, duplicates) across the in-flight
	// multiset. Two copies of the same logical message differ only in Seq.
	Seq int64
}

// Key returns the message's content identity: everything except the per-copy
// Seq tag. Retransmitted or duplicated copies of one logical message share a
// key, which is what per-message fault budgets are counted against.
func (m Message) Key() Message {
	m.Seq = 0
	return m
}

// KeyString renders Key() as an injective string, the dupemap's map key.
// Built by hand because it sits on the bus's per-delivery hot path.
func (m Message) KeyString() string {
	var b strings.Builder
	b.Grow(32 + len(m.Payload) + 4*len(m.Set))
	b.WriteString(strconv.Itoa(int(m.From)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(m.To)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(m.Round))
	b.WriteByte('|')
	b.WriteString(string(m.Kind))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(m.Value))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(m.Proposer)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(m.Instance))
	b.WriteByte('|')
	for _, v := range m.Set {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	// Length-prefixed so a Payload containing separators stays injective.
	b.WriteString(strconv.Itoa(len(m.Payload)))
	b.WriteByte(':')
	b.WriteString(m.Payload)
	return b.String()
}

func (m Message) String() string {
	switch m.Kind {
	case MsgBV:
		return fmt.Sprintf("BV(r%d,%d) %d->%d", m.Round, m.Value, m.From, m.To)
	case MsgVote, MsgCand:
		return fmt.Sprintf("%s(r%d,%d) %d->%d", m.Kind, m.Round, m.Value, m.From, m.To)
	case MsgProp, MsgEcho, MsgReady:
		return fmt.Sprintf("%s(p%d,%q) %d->%d", m.Kind, m.Proposer, m.Payload, m.From, m.To)
	default:
		vals := make([]string, len(m.Set))
		for i, v := range m.Set {
			vals[i] = fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("AUX(r%d,{%s}) %d->%d", m.Round, strings.Join(vals, ","), m.From, m.To)
	}
}

// Sender lets a process emit messages during Start or Deliver.
type Sender func(m Message)

// Process is a participant: correct processes implement Algorithm 1,
// Byzantine processes implement an attack strategy.
type Process interface {
	ID() ProcID
	// Start is invoked once before any delivery.
	Start(send Sender)
	// Deliver handles one incoming message.
	Deliver(m Message, send Sender)
}

// Scheduler resolves asynchrony: given the in-flight messages, it picks the
// index of the next one to deliver. It fully determines the adversarial
// message ordering. Returning Tick delivers nothing but still advances
// simulated time — the escape hatch a fault layer uses while every in-flight
// message is held behind a partition or a delivery delay.
type Scheduler interface {
	Next(inflight []Message, step int) int
}

// Tick is the sentinel a Scheduler returns to advance time without a
// delivery.
const Tick = -1

// Ticker is implemented by processes that want periodic timer events (the
// hook retransmission layers are built on). The System invokes OnTick every
// TickInterval steps; sends made during OnTick enter the network normally.
type Ticker interface {
	OnTick(step int, send Sender)
}

// Backend selects the in-flight message store.
type Backend int

const (
	// BackendBus (the default) stores messages in per-peer queues behind a
	// broker. With zero BusOptions it replays byte-identically to the flat
	// loop under any Scheduler.
	BackendBus Backend = iota
	// BackendFlat is the legacy flat in-flight slice, kept as the
	// compatibility shim the byte-identity tests cross-validate against.
	BackendFlat
)

// Options configure a System beyond processes and scheduler.
type Options struct {
	Backend Backend
	Bus     BusOptions
	// Native, when non-nil, switches the bus to window-drain mode: the
	// Scheduler is no longer consulted (it may be nil); every Step drains
	// up to Batch eligible entries per peer, optionally across parallel
	// partitions. Required for sparse topologies.
	Native *NativeOptions
}

// System wires processes, the in-flight message multiset and a scheduler.
type System struct {
	procs map[ProcID]Process
	order []ProcID
	sched Scheduler

	flat    []Message // BackendFlat store
	bus     *busStore // BackendBus store
	native  *NativeOptions
	started bool
	sender  ProcID // process currently executing Start/Deliver

	// native-mode scratch, reused across windows
	drains     []peerDrain
	egressUsed []int

	// Trace records every delivered message when enabled.
	Trace       []Message
	RecordTrace bool
	Steps       int
	DroppedPast int // deliveries to finished processes etc. (diagnostics)

	// SendTap, when non-nil, interposes on the send path after the sender
	// identity is stamped: the returned copies are enqueued instead of the
	// original (nil = the message is dropped). It is the fault-injection
	// hook of internal/faults; the base network is reliable.
	SendTap func(m Message) []Message

	// HoldTap, consulted once per enqueued copy in native mode, returns the
	// earliest step the copy may deliver (0 = immediately). It is how the
	// fault plane's delivery delays thread through the bus: the compat path
	// keeps them inside the Scheduler instead.
	HoldTap func(m Message) int

	// CutTap, consulted at dequeue time in native mode, reports whether the
	// physical from->to link is severed at the given step (partitions).
	// It must be pure: native workers call it concurrently.
	CutTap func(from, to ProcID, step int) bool

	// StepTap observes the window clock at the top of each native step,
	// before any delivery — the native analogue of the fault injector
	// advancing its clock inside Scheduler.Next.
	StepTap func(step int)

	// TickInterval > 0 invokes OnTick on every Ticker process each
	// TickInterval steps (delivery steps and scheduler Tick steps alike).
	// With ticks enabled the system no longer quiesces on an empty in-flight
	// set — time keeps passing so retransmission timers can fire — and a run
	// ends only via its stop predicate or step budget.
	TickInterval int
}

// peerDrain buffers one peer's native-window results so the merge phase can
// apply them deterministically in peer-id order regardless of how many
// worker partitions produced them.
type peerDrain struct {
	delivered []Message  // messages handed to the process, in pop order
	sends     []Message  // handler output, in emission order
	relays    []busEntry // in-transit entries to forward at merge
	taken     int        // entries popped (delivered + filtered + relayed)
	filtered  int64      // dupemap suppressions at delivery time
}

// NewSystem builds a system over the given processes with the default
// event-bus backend (byte-identical to the legacy flat loop).
func NewSystem(procs []Process, sched Scheduler) (*System, error) {
	return NewSystemOpts(procs, sched, Options{})
}

// NewSystemOpts builds a system with explicit backend, bus and drain-mode
// options.
func NewSystemOpts(procs []Process, sched Scheduler, opts Options) (*System, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("network: no processes")
	}
	if sched == nil && opts.Native == nil {
		return nil, fmt.Errorf("network: no scheduler")
	}
	s := &System{procs: make(map[ProcID]Process, len(procs)), sched: sched}
	for _, p := range procs {
		if _, dup := s.procs[p.ID()]; dup {
			return nil, fmt.Errorf("network: duplicate process id %d", p.ID())
		}
		s.procs[p.ID()] = p
		s.order = append(s.order, p.ID())
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	switch opts.Backend {
	case BackendFlat:
		if opts.Native != nil {
			return nil, fmt.Errorf("network: native drain mode requires the bus backend")
		}
		if opts.Bus.QueueCap != 0 || opts.Bus.EgressCap != 0 || opts.Bus.Dupemap ||
			opts.Bus.DupemapCap != 0 || opts.Bus.StallK != 0 || opts.Bus.Topology != nil {
			return nil, fmt.Errorf("network: flat backend does not support bus options")
		}
	case BackendBus:
		s.bus = newBusStore(s.order, opts.Bus)
		if s.bus.sparse && opts.Native == nil {
			return nil, fmt.Errorf("network: topology %q relays through peers and requires native drain mode", s.bus.topo.Name())
		}
		if opts.Native != nil {
			nat := *opts.Native
			if nat.Batch <= 0 {
				nat.Batch = 4
			}
			if nat.Partitions <= 0 {
				nat.Partitions = 1
			}
			if nat.ScanLimit <= 0 {
				nat.ScanLimit = 128
			}
			s.native = &nat
			s.drains = make([]peerDrain, len(s.order))
			s.egressUsed = make([]int, len(s.order))
		}
	default:
		return nil, fmt.Errorf("network: unknown backend %d", opts.Backend)
	}
	return s, nil
}

// NativeMode reports whether the system drains in native windows (no
// Scheduler consultation).
func (s *System) NativeMode() bool { return s.native != nil }

// Subscribe restricts a process's queue to the given topics. Before the
// first call a peer receives everything; afterwards only matching
// (Kind, Instance) messages are enqueued (AnyInstance wildcards the
// instance). Bus backend only.
func (s *System) Subscribe(id ProcID, topics ...Topic) error {
	if s.bus == nil {
		return fmt.Errorf("network: subscriptions require the bus backend")
	}
	if _, ok := s.procs[id]; !ok {
		return fmt.Errorf("network: subscribe: unknown process %d", id)
	}
	s.bus.subscribe(id, topics...)
	return nil
}

// BusStats returns a snapshot of the bus counters (zero value on the flat
// backend).
func (s *System) BusStats() BusStats {
	if s.bus == nil {
		return BusStats{}
	}
	return s.bus.stats
}

// StallEvents returns the first stall transitions observed (capped), and
// Stalled the set of currently-stalled peers.
func (s *System) StallEvents() []StallEvent {
	if s.bus == nil {
		return nil
	}
	return s.bus.stallLog
}

// Stalled returns the peers currently flagged by the stall detector.
func (s *System) Stalled() []ProcID {
	if s.bus == nil {
		return nil
	}
	var out []ProcID
	for qi := range s.bus.queues {
		if s.bus.queues[qi].stalled {
			out = append(out, s.bus.queues[qi].id)
		}
	}
	return out
}

// send enqueues a message (reliable: it stays in flight until delivered).
// Channels are authenticated point-to-point links (Section 2 of the paper):
// the sender identity is stamped by the network, so even a Byzantine process
// cannot forge another process's From — forging would defeat every
// distinct-sender threshold of the protocols above.
func (s *System) send(m Message) {
	if _, ok := s.procs[m.To]; !ok {
		s.DroppedPast++
		return
	}
	m.From = s.sender
	if s.native != nil && s.bus.opts.EgressCap > 0 {
		fi := s.bus.idx[m.From]
		if s.egressUsed[fi] >= s.bus.opts.EgressCap {
			// Defer to the sender's bounded egress buffer; drained FIFO at
			// the top of later windows, so nothing starves.
			q := &s.bus.queues[fi]
			if s.bus.opts.QueueCap > 0 && q.egressDepth() >= s.bus.opts.QueueCap {
				s.bus.stats.EgressDrops++
				obsEgressDrops.Inc()
				return
			}
			q.egress = append(q.egress, m)
			return
		}
		s.egressUsed[fi]++
	}
	if s.SendTap != nil {
		for _, c := range s.SendTap(m) {
			c.From = m.From // the tap may copy but not forge the sender
			s.enqueue(c)
		}
		return
	}
	s.enqueue(m)
}

// enqueue places one copy into the backing store. Copy-on-enqueue: every
// in-flight copy owns its Set backing array, so a later mutation through the
// sender's template (a Byzantine strategy reusing one literal, a
// retransmitted outbox entry, a fault-layer duplicate) cannot bleed into
// copies already in flight — the append-backing-array aliasing family PR 3
// fixed in fullWalk.
func (s *System) enqueue(m Message) {
	if m.Set != nil {
		m.Set = append([]int(nil), m.Set...)
	}
	if s.bus == nil {
		s.flat = append(s.flat, m)
		return
	}
	notBefore := 0
	if s.HoldTap != nil {
		notBefore = s.HoldTap(m)
	}
	s.bus.enqueue(m, notBefore)
}

// Inflight returns the number of undelivered messages (including native-mode
// deferred egress).
func (s *System) Inflight() int {
	if s.bus == nil {
		return len(s.flat)
	}
	n := s.bus.size
	if s.native != nil && s.bus.opts.EgressCap > 0 {
		n += s.bus.egressPending()
	}
	return n
}

// Inject enqueues a message from outside any handler (scripted adversaries,
// fault-plane tests). Unlike in-handler sends the sender identity is taken
// from the message itself; the message still passes through SendTap.
func (s *System) Inject(m Message) {
	s.sender = m.From
	s.send(m)
}

// start runs every process's Start hook once.
func (s *System) start() {
	s.started = true
	for _, id := range s.order {
		s.sender = id
		s.procs[id].Start(s.send)
	}
}

// Step delivers exactly one message (after starting all processes on the
// first call). It reports whether a delivery happened (false = quiescent).
// In native mode one Step is one drain window instead (see stepWindow).
func (s *System) Step() (bool, error) {
	if s.native != nil {
		return s.stepWindow()
	}
	if !s.started {
		s.start()
	}
	if s.Inflight() == 0 {
		if s.TickInterval > 0 {
			// Time passes even with nothing in flight: retransmission
			// timers must be able to repopulate the network (e.g. after a
			// crash window swallowed every copy).
			s.Steps++
			s.tick()
			return true, nil
		}
		return false, nil
	}
	view := s.flat
	if s.bus != nil {
		view = s.bus.compatView()
	}
	idx := s.sched.Next(view, s.Steps)
	if idx == Tick {
		s.Steps++
		s.tick()
		return true, nil
	}
	if idx < 0 || idx >= len(view) {
		return false, fmt.Errorf("network: scheduler chose out-of-range message %d of %d", idx, len(view))
	}
	s.Steps++
	var m Message
	if s.bus != nil {
		m = s.bus.takeCompat(idx, s.Steps)
		s.bus.stats.Delivered++
		obsDelivered.Inc()
		if q := &s.bus.queues[s.bus.idx[m.To]]; q.seen != nil {
			k := m.KeyString()
			if q.seen.has(k) {
				// Replay filter (opt-in): the copy is consumed but not
				// delivered; the step still advances simulated time.
				s.bus.stats.Delivered--
				s.bus.stats.Filtered++
				obsDelivered.Add(-1)
				obsFiltered.Inc()
				s.bus.scanStalls(s.Steps)
				s.tick()
				return true, nil
			}
			q.seen.add(k)
		}
		s.bus.scanStalls(s.Steps)
	} else {
		m = s.flat[idx]
		s.flat = append(s.flat[:idx], s.flat[idx+1:]...)
	}
	if s.RecordTrace {
		s.Trace = append(s.Trace, m)
	}
	s.sender = m.To
	s.procs[m.To].Deliver(m, s.send)
	s.tick()
	return true, nil
}

// tick fires the periodic timer when the step count crosses a TickInterval
// boundary.
func (s *System) tick() {
	if s.TickInterval <= 0 || s.Steps%s.TickInterval != 0 {
		return
	}
	for _, id := range s.order {
		if t, ok := s.procs[id].(Ticker); ok {
			s.sender = id
			t.OnTick(s.Steps, s.send)
		}
	}
}

// Run steps until quiescence, the stop predicate fires, or maxSteps is
// reached. It returns the number of steps taken. A panic in a process
// handler or scheduler is converted into an error (annotated with the step
// at which it fired) so that property campaigns survive a misbehaving
// worker instead of crashing wholesale; native-mode worker goroutines carry
// their own recovery (see stepWindow) and surface the same way.
func (s *System) Run(maxSteps int, stop func() bool) (steps int, err error) {
	defer func() {
		if r := recover(); r != nil {
			steps = s.Steps
			err = fmt.Errorf("network: panic at step %d: %v\n%s", s.Steps, r, debug.Stack())
		}
	}()
	for i := 0; maxSteps <= 0 || i < maxSteps; i++ {
		if stop != nil && stop() {
			return s.Steps, nil
		}
		progressed, err := s.Step()
		if err != nil {
			return s.Steps, err
		}
		if !progressed {
			return s.Steps, nil
		}
	}
	return s.Steps, nil
}

// Broadcast sends m to every process (including the sender, per the
// paper's broadcast primitive).
func Broadcast(send Sender, procs []ProcID, m Message) {
	for _, to := range procs {
		mm := m
		mm.To = to
		send(mm)
	}
}

// --- Schedulers ---

// FIFOScheduler delivers messages in send order: the synchronous-friendly
// baseline.
type FIFOScheduler struct{}

// Next implements Scheduler.
func (FIFOScheduler) Next(inflight []Message, _ int) int { return 0 }

// RandomScheduler delivers a uniformly random in-flight message: the
// standard asynchrony model for property-based testing.
type RandomScheduler struct {
	Rng *rand.Rand
}

// Next implements Scheduler.
func (r RandomScheduler) Next(inflight []Message, _ int) int {
	return r.Rng.Intn(len(inflight))
}

// PriorityScheduler delivers the in-flight message with the smallest key.
// Ties break by queue position (send order).
type PriorityScheduler struct {
	Key func(m Message) int
}

// Next implements Scheduler.
func (p PriorityScheduler) Next(inflight []Message, _ int) int {
	best := 0
	bestKey := p.Key(inflight[0])
	for i := 1; i < len(inflight); i++ {
		if k := p.Key(inflight[i]); k < bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

// FuncScheduler adapts a plain function.
type FuncScheduler func(inflight []Message, step int) int

// Next implements Scheduler.
func (f FuncScheduler) Next(inflight []Message, step int) int { return f(inflight, step) }
