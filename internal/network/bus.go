package network

import "sort"

// BusOptions configure the event-bus message store (the default backend).
// The zero value reproduces the reliable flat loop exactly: unbounded
// queues, no replay filtering, no stall detection, full mesh.
type BusOptions struct {
	// QueueCap bounds each peer's ingress queue (and, in native mode, its
	// deferred egress buffer). Enqueues beyond the cap are dropped and
	// counted; retransmission recovers the content. 0 = unbounded.
	QueueCap int
	// EgressCap bounds how many messages one peer may push onto the bus per
	// simulated step in native mode; excess sends are deferred to the
	// peer's egress buffer and drained FIFO on later steps. 0 = unbounded.
	EgressCap int
	// Dupemap enables the per-receiver replay filter: a bounded seen-set of
	// delivered Message.Key()s; copies whose key was already delivered are
	// dropped (at enqueue when possible, else at delivery) and counted.
	Dupemap bool
	// DupemapCap bounds each peer's seen-set; oldest keys are evicted FIFO
	// (an evicted key may be delivered again — harmless, the protocols are
	// idempotent). 0 = 8192.
	DupemapCap int
	// StallK flags a peer whose nonempty queue makes no progress for K
	// consecutive simulated steps. The flag clears on the next pop.
	// 0 = disabled.
	StallK int
	// Topology routes messages; nil = FullMesh. Sparse topologies relay
	// through intermediate peers' queues and require native drain mode
	// (the compat Scheduler contract exposes end-to-end messages).
	Topology Topology
}

// NativeOptions select the bus's native window-drain mode: each Step is one
// simulated window in which every peer pops up to Batch eligible entries
// FIFO from its own queue. Windows are deterministic for a fixed seed and
// independent of Partitions, so runs fingerprint identically at any worker
// count.
type NativeOptions struct {
	// Batch is the per-peer delivery budget per window. 0 = 4.
	Batch int
	// Partitions splits peers across drain goroutines (peer id mod
	// Partitions); each process's state is only ever touched by its owning
	// worker. 0 or 1 = sequential.
	Partitions int
	// ScanLimit bounds how deep the eligibility scan looks past held
	// entries (delayed or behind a partition cut) before giving up for the
	// window, preventing head-of-line scans from going quadratic. 0 = 128.
	ScanLimit int
}

// BusStats is a snapshot of the bus's counters.
type BusStats struct {
	Enqueued    int64 `json:"enqueued"`
	Delivered   int64 `json:"delivered"`
	Relayed     int64 `json:"relayed"`
	CapDrops    int64 `json:"cap_drops"`
	EgressDrops int64 `json:"egress_drops"`
	Filtered    int64 `json:"filtered"`
	TopicDrops  int64 `json:"topic_drops"`
	TTLDrops    int64 `json:"ttl_drops"`
	Stalls      int64 `json:"stalls"`
	PeakDepth   int   `json:"peak_depth"`
}

// StallEvent records one peer entering the stalled state.
type StallEvent struct {
	Peer  ProcID `json:"peer"`
	Step  int    `json:"step"`
	Depth int    `json:"depth"`
	Idle  int    `json:"idle"`
}

// Topic is a subscription key: messages are matched on (Kind, Instance).
// Instance AnyInstance matches every instance of the kind.
type Topic struct {
	Kind     MsgKind
	Instance int
}

// AnyInstance is the Topic wildcard instance.
const AnyInstance = -1

// maxHops bounds gossip routes as a safety net against topology bugs; the
// shipped topologies never get near it (greedy XOR routing is loop-free).
const maxHops = 64

// dupemap is a bounded seen-set with FIFO eviction.
type dupemap struct {
	seen map[string]struct{}
	ring []string
	next int
}

func newDupemap(cap int) *dupemap {
	if cap <= 0 {
		cap = 8192
	}
	return &dupemap{seen: make(map[string]struct{}), ring: make([]string, cap)}
}

func (d *dupemap) has(k string) bool {
	_, ok := d.seen[k]
	return ok
}

func (d *dupemap) add(k string) {
	if _, ok := d.seen[k]; ok {
		return
	}
	if old := d.ring[d.next]; old != "" {
		delete(d.seen, old)
	}
	d.ring[d.next] = k
	d.next = (d.next + 1) % len(d.ring)
	d.seen[k] = struct{}{}
}

// busEntry is one in-flight copy sitting in a peer's ingress queue.
type busEntry struct {
	msg Message
	// hopFrom is the physical sender of this hop (== msg.From on the first
	// hop, the relaying peer afterwards). Partition cuts apply to the
	// physical link.
	hopFrom   ProcID
	arrival   int64 // global enqueue order; the compat view merges on it
	notBefore int   // earliest step this copy may deliver (native delays)
	hops      int
}

// peerQueue is one peer's bounded FIFO ingress queue.
type peerQueue struct {
	id   ProcID
	buf  []busEntry
	head int
	seen *dupemap       // nil = dupemap off
	subs map[Topic]bool // nil = subscribed to everything
	// egress is the native-mode deferred send buffer (EgressCap overflow).
	egress     []Message
	egressHead int

	lastProgress int
	stalled      bool
}

func (q *peerQueue) depth() int { return len(q.buf) - q.head }

func (q *peerQueue) at(i int) *busEntry { return &q.buf[q.head+i] }

func (q *peerQueue) push(e busEntry) { q.buf = append(q.buf, e) }

// removeAt removes the entry at head-relative index i, preserving the order
// of the rest, and returns it. Entries ahead of i shift back by one.
func (q *peerQueue) removeAt(i int) busEntry {
	e := q.buf[q.head+i]
	copy(q.buf[q.head+1:q.head+i+1], q.buf[q.head:q.head+i])
	q.buf[q.head] = busEntry{} // release Set/Payload references
	q.head++
	if q.head > 64 && q.head > len(q.buf)/2 {
		n := copy(q.buf, q.buf[q.head:])
		for j := n; j < len(q.buf); j++ {
			q.buf[j] = busEntry{}
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return e
}

func (q *peerQueue) egressDepth() int { return len(q.egress) - q.egressHead }

func (q *peerQueue) egressPop() Message {
	m := q.egress[q.egressHead]
	q.egress[q.egressHead] = Message{}
	q.egressHead++
	if q.egressHead > 64 && q.egressHead > len(q.egress)/2 {
		n := copy(q.egress, q.egress[q.egressHead:])
		for j := n; j < len(q.egress); j++ {
			q.egress[j] = Message{}
		}
		q.egress = q.egress[:n]
		q.egressHead = 0
	}
	return m
}

func (q *peerQueue) subscribed(m Message) bool {
	if q.subs == nil {
		return true
	}
	return q.subs[Topic{Kind: m.Kind, Instance: m.Instance}] ||
		q.subs[Topic{Kind: m.Kind, Instance: AnyInstance}]
}

// busStore is the event-bus in-flight store: a broker over per-peer bounded
// FIFO queues. Arrival stamps give it a second identity: merging every
// queue in arrival order reproduces, entry for entry, the flat loop's
// in-flight slice (appends are monotone and index-removal preserves order),
// which is what makes the compat Scheduler path byte-identical.
type busStore struct {
	opts   BusOptions
	topo   Topology
	sparse bool // topology may route through relays

	ids    []ProcID
	idx    map[ProcID]int
	queues []peerQueue

	arrival int64
	size    int // total queued entries across peers

	stats    BusStats
	stallLog []StallEvent

	// compat-view scratch, reused across steps
	viewBuf []Message
	viewRef []viewRef
}

type viewRef struct {
	peer, pos int
	arrival   int64
}

func newBusStore(ids []ProcID, opts BusOptions) *busStore {
	b := &busStore{opts: opts, ids: ids, idx: make(map[ProcID]int, len(ids))}
	b.topo = opts.Topology
	if b.topo == nil {
		b.topo = FullMesh{}
	}
	b.sparse = b.topo.Neighbors(ids[0]) != nil
	b.queues = make([]peerQueue, len(ids))
	for i, id := range ids {
		b.idx[id] = i
		b.queues[i] = peerQueue{id: id}
		if opts.Dupemap {
			b.queues[i].seen = newDupemap(opts.DupemapCap)
		}
	}
	return b
}

// subscribe restricts a peer's queue to the given topics (first call flips
// the peer from subscribed-to-everything to explicit subscriptions).
func (b *busStore) subscribe(id ProcID, topics ...Topic) {
	q := &b.queues[b.idx[id]]
	if q.subs == nil {
		q.subs = make(map[Topic]bool)
	}
	for _, t := range topics {
		q.subs[t] = true
	}
}

// enqueue routes one copy onto its first hop's queue.
func (b *busStore) enqueue(m Message, notBefore int) {
	hop := m.To
	if b.sparse {
		hop = b.topo.NextHop(m.From, m.To)
	}
	b.enqueueAt(hop, m.From, m, notBefore, 0)
}

// forward re-enqueues a relayed entry toward its destination from the peer
// that just popped it.
func (b *busStore) forward(e busEntry, at ProcID) {
	if e.hops+1 >= maxHops {
		b.stats.TTLDrops++
		return
	}
	b.stats.Relayed++
	obsRelayed.Inc()
	b.enqueueAt(b.topo.NextHop(at, e.msg.To), at, e.msg, e.notBefore, e.hops+1)
}

func (b *busStore) enqueueAt(at, hopFrom ProcID, m Message, notBefore, hops int) {
	q := &b.queues[b.idx[at]]
	if at == m.To { // final hop: subscription + replay filters apply
		if !q.subscribed(m) {
			b.stats.TopicDrops++
			return
		}
		if q.seen != nil && q.seen.has(m.KeyString()) {
			b.stats.Filtered++
			return
		}
	}
	if b.opts.QueueCap > 0 && q.depth() >= b.opts.QueueCap {
		b.stats.CapDrops++
		obsCapDrops.Inc()
		return
	}
	b.arrival++
	q.push(busEntry{msg: m, hopFrom: hopFrom, arrival: b.arrival, notBefore: notBefore, hops: hops})
	b.size++
	b.stats.Enqueued++
	obsEnqueued.Inc()
	if d := q.depth(); d > b.stats.PeakDepth {
		b.stats.PeakDepth = d
		obsPeakDepth.Set(int64(d))
	}
}

// compatView materializes every queued entry in arrival order — exactly the
// flat loop's in-flight slice. The returned slice is valid until the next
// mutation; takeCompat(i) removes the entry backing view index i.
func (b *busStore) compatView() []Message {
	b.viewRef = b.viewRef[:0]
	for qi := range b.queues {
		q := &b.queues[qi]
		for i := 0; i < q.depth(); i++ {
			b.viewRef = append(b.viewRef, viewRef{peer: qi, pos: i, arrival: q.at(i).arrival})
		}
	}
	sort.Slice(b.viewRef, func(i, j int) bool { return b.viewRef[i].arrival < b.viewRef[j].arrival })
	b.viewBuf = b.viewBuf[:0]
	for _, r := range b.viewRef {
		b.viewBuf = append(b.viewBuf, b.queues[r.peer].at(r.pos).msg)
	}
	return b.viewBuf
}

func (b *busStore) takeCompat(i, step int) Message {
	r := b.viewRef[i]
	q := &b.queues[r.peer]
	e := q.removeAt(r.pos)
	q.lastProgress = step
	q.stalled = false
	b.size--
	return e.msg
}

// scanStalls flags peers whose nonempty queue has made no progress for
// StallK steps, returning how many peers newly stalled this step.
func (b *busStore) scanStalls(step int) int {
	if b.opts.StallK <= 0 {
		return 0
	}
	newly := 0
	for qi := range b.queues {
		q := &b.queues[qi]
		if q.depth() == 0 {
			q.lastProgress = step
			q.stalled = false
			continue
		}
		if idle := step - q.lastProgress; idle >= b.opts.StallK && !q.stalled {
			q.stalled = true
			newly++
			b.stats.Stalls++
			obsStalls.Inc()
			if len(b.stallLog) < 64 {
				b.stallLog = append(b.stallLog, StallEvent{Peer: q.id, Step: step, Depth: q.depth(), Idle: idle})
			}
		}
	}
	return newly
}

func (b *busStore) egressPending() int {
	n := 0
	for qi := range b.queues {
		n += b.queues[qi].egressDepth()
	}
	return n
}
