package network

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// chatter floods the network deterministically: on start it broadcasts round
// 0 to every peer, and every delivery of a round below the horizon triggers a
// broadcast of the next round. No randomness — traces must be identical
// across backends and partition counts.
type chatter struct {
	id       ProcID
	all      []ProcID
	horizon  int
	received []Message
	seen     map[int]bool
}

func (c *chatter) ID() ProcID { return c.id }
func (c *chatter) Start(send Sender) {
	c.emit(0, send)
}
func (c *chatter) Deliver(m Message, send Sender) {
	c.received = append(c.received, m)
	if m.Round+1 < c.horizon {
		c.emit(m.Round+1, send)
	}
}
func (c *chatter) emit(round int, send Sender) {
	if c.seen == nil {
		c.seen = make(map[int]bool)
	}
	if c.seen[round] {
		return
	}
	c.seen[round] = true
	Broadcast(send, c.all, Message{From: c.id, Round: round, Kind: MsgBV, Value: int(c.id)})
}

func chatterSystem(t *testing.T, n, horizon int, sched Scheduler, opts Options) *System {
	t.Helper()
	all := make([]ProcID, n)
	procs := make([]Process, n)
	for i := range all {
		all[i] = ProcID(i)
	}
	for i := range procs {
		procs[i] = &chatter{id: ProcID(i), all: all, horizon: horizon}
	}
	sys, err := NewSystemOpts(procs, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys.RecordTrace = true
	return sys
}

// TestBusCompatMatchesFlat is the byte-identity invariant at network level:
// under an adversarial random scheduler the bus's arrival-ordered compat view
// must reproduce the flat loop's in-flight slice entry for entry, so the
// same seed yields the same step count and the same delivery trace.
func TestBusCompatMatchesFlat(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1001} {
		flat := chatterSystem(t, 5, 4, RandomScheduler{Rng: rand.New(rand.NewSource(seed))},
			Options{Backend: BackendFlat})
		bus := chatterSystem(t, 5, 4, RandomScheduler{Rng: rand.New(rand.NewSource(seed))},
			Options{Backend: BackendBus})
		fs, err := flat.Run(10_000, nil)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := bus.Run(10_000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fs != bs {
			t.Fatalf("seed %d: steps flat=%d bus=%d", seed, fs, bs)
		}
		if !reflect.DeepEqual(flat.Trace, bus.Trace) {
			t.Fatalf("seed %d: traces diverge (flat %d entries, bus %d)", seed, len(flat.Trace), len(bus.Trace))
		}
		if bus.BusStats().Delivered != int64(len(bus.Trace)) {
			t.Errorf("seed %d: Delivered=%d trace=%d", seed, bus.BusStats().Delivered, len(bus.Trace))
		}
	}
}

func TestDupemapEviction(t *testing.T) {
	d := newDupemap(2)
	d.add("a")
	d.add("b")
	if !d.has("a") || !d.has("b") {
		t.Fatal("fresh keys missing")
	}
	d.add("a") // idempotent: must not evict anything
	if !d.has("a") || !d.has("b") {
		t.Fatal("re-add of a present key evicted something")
	}
	d.add("c") // capacity 2: the oldest key (a) goes
	if d.has("a") {
		t.Error("a should have been evicted FIFO")
	}
	if !d.has("b") || !d.has("c") {
		t.Error("b and c should survive")
	}
}

// TestDupemapFiltersReplays: with the replay filter on, a second copy of an
// already-delivered message is consumed without a delivery — and a copy
// enqueued after its key was delivered is dropped at enqueue time.
func TestDupemapFiltersReplays(t *testing.T) {
	a := &collectProc{id: 0}
	b := &collectProc{id: 1}
	sys, err := NewSystemOpts([]Process{a, b}, FIFOScheduler{}, Options{Bus: BusOptions{Dupemap: true}})
	if err != nil {
		t.Fatal(err)
	}
	m := Message{From: 0, To: 1, Round: 0, Kind: MsgBV, Value: 1}
	dup := m
	dup.Seq = 99 // same Key(), distinct copy
	sys.Inject(m)
	sys.Inject(dup)
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 {
		t.Fatalf("deliveries = %d, want 1 (replay filtered)", len(b.received))
	}
	st := sys.BusStats()
	if st.Filtered != 1 {
		t.Errorf("Filtered = %d, want 1", st.Filtered)
	}
	// Post-delivery enqueue: filtered before it ever occupies queue space.
	sys.Inject(m)
	if sys.Inflight() != 0 {
		t.Errorf("replayed copy occupied the queue: inflight=%d", sys.Inflight())
	}
	if got := sys.BusStats().Filtered; got != 2 {
		t.Errorf("Filtered = %d, want 2", got)
	}
}

func TestQueueCapDrops(t *testing.T) {
	a := &collectProc{id: 0}
	b := &collectProc{id: 1}
	sys, err := NewSystemOpts([]Process{a, b}, FIFOScheduler{}, Options{Bus: BusOptions{QueueCap: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sys.Inject(Message{From: 0, To: 1, Kind: MsgBV, Value: 1})
	sys.Inject(Message{From: 0, To: 1, Kind: MsgBV, Value: 2})
	if got := sys.BusStats().CapDrops; got != 1 {
		t.Fatalf("CapDrops = %d, want 1", got)
	}
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 || b.received[0].Value != 1 {
		t.Errorf("received %v, want exactly the first copy", b.received)
	}
}

func TestTopicSubscriptionFilter(t *testing.T) {
	a := &collectProc{id: 0}
	b := &collectProc{id: 1}
	sys, err := NewSystem([]Process{a, b}, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe(1, Topic{Kind: MsgBV, Instance: AnyInstance}); err != nil {
		t.Fatal(err)
	}
	sys.Inject(Message{From: 0, To: 1, Kind: MsgAux, Set: []int{1}})
	sys.Inject(Message{From: 0, To: 1, Kind: MsgBV, Value: 1, Instance: 3})
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 || b.received[0].Kind != MsgBV {
		t.Fatalf("received %v, want only the subscribed BV", b.received)
	}
	if got := sys.BusStats().TopicDrops; got != 1 {
		t.Errorf("TopicDrops = %d, want 1", got)
	}
	if err := sys.Subscribe(99); err == nil {
		t.Error("subscribing an unknown process should error")
	}
}

// TestCopyOnEnqueueAliasing is the regression test for the Set-aliasing bug
// family: a sender that mutates its Set slice after the send must not reach
// into copies already in flight, on either backend.
func TestCopyOnEnqueueAliasing(t *testing.T) {
	for _, backend := range []Backend{BackendBus, BackendFlat} {
		a := &collectProc{id: 0}
		b := &collectProc{id: 1}
		sys, err := NewSystemOpts([]Process{a, b}, FIFOScheduler{}, Options{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		shared := []int{0, 1}
		sys.Inject(Message{From: 0, To: 1, Kind: MsgAux, Set: shared})
		shared[0] = 9 // mutation after enqueue: in-flight copy must not see it
		if _, err := sys.Run(100, nil); err != nil {
			t.Fatal(err)
		}
		if len(b.received) != 1 {
			t.Fatalf("backend %d: deliveries = %d", backend, len(b.received))
		}
		if got := b.received[0].Set; !reflect.DeepEqual(got, []int{0, 1}) {
			t.Errorf("backend %d: delivered Set = %v, want the pre-mutation {0,1}", backend, got)
		}
	}
}

// TestNativeDeterministicAcrossPartitions: the same workload must produce
// identical traces and counters at any worker partition count — peer-id
// merge order, not goroutine scheduling, defines the semantics.
func TestNativeDeterministicAcrossPartitions(t *testing.T) {
	run := func(parts int) ([]Message, BusStats, int) {
		sys := chatterSystem(t, 9, 5, nil, Options{
			Bus:    BusOptions{QueueCap: 64, Dupemap: true, StallK: 100},
			Native: &NativeOptions{Batch: 2, Partitions: parts},
		})
		if _, err := sys.Run(10_000, nil); err != nil {
			t.Fatal(err)
		}
		return sys.Trace, sys.BusStats(), sys.Steps
	}
	t1, s1, n1 := run(1)
	for _, parts := range []int{2, 4, 16} {
		tp, sp, np := run(parts)
		if n1 != np {
			t.Fatalf("partitions=%d: steps %d != %d", parts, np, n1)
		}
		if !reflect.DeepEqual(t1, tp) {
			t.Fatalf("partitions=%d: trace diverges from sequential drain", parts)
		}
		if s1 != sp {
			t.Fatalf("partitions=%d: stats %+v != %+v", parts, sp, s1)
		}
	}
	if s1.Delivered == 0 {
		t.Fatal("no deliveries — workload broken")
	}
}

// TestNativeHoldAndStallDetection: entries held behind a severed link make no
// progress; after StallK windows the peer is flagged, and the flag clears
// once the link heals and deliveries resume.
func TestNativeHoldAndStallDetection(t *testing.T) {
	a := &pingProc{id: 0, peer: 1}
	b := &pingProc{id: 1, peer: 0}
	sys, err := NewSystemOpts([]Process{a, b}, nil, Options{
		Bus:    BusOptions{StallK: 3},
		Native: &NativeOptions{Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cut := true
	sys.CutTap = func(from, to ProcID, step int) bool { return cut }
	for i := 0; i < 5; i++ {
		if _, err := sys.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.Stalled(); len(got) != 2 {
		t.Fatalf("stalled = %v, want both peers (cut link, nonempty queues)", got)
	}
	if evs := sys.StallEvents(); len(evs) == 0 || evs[0].Idle < 3 {
		t.Fatalf("stall events = %+v", evs)
	}
	if sys.BusStats().Stalls != 2 {
		t.Errorf("Stalls = %d, want 2", sys.BusStats().Stalls)
	}
	cut = false
	if _, err := sys.Step(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stalled(); len(got) != 0 {
		t.Errorf("stalled = %v after heal, want none", got)
	}
	if len(a.received) != 1 || len(b.received) != 1 {
		t.Errorf("deliveries a=%d b=%d after heal, want 1 each", len(a.received), len(b.received))
	}
}

// TestNativeHoldTapDelays: HoldTap's notBefore is honored — the copy is
// skipped (not popped) until the step it becomes eligible.
func TestNativeHoldTapDelays(t *testing.T) {
	a := &pingProc{id: 0, peer: 1}
	b := &sink{id: 1}
	sys, err := NewSystemOpts([]Process{a, b}, nil, Options{Native: &NativeOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	sys.HoldTap = func(m Message) int { return 4 }
	for i := 0; i < 3; i++ {
		if _, err := sys.Step(); err != nil {
			t.Fatal(err)
		}
		if len(b.received) != 0 {
			t.Fatalf("delivered at step %d, held until 4", sys.Steps)
		}
	}
	if _, err := sys.Step(); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 {
		t.Fatalf("deliveries = %d at step 4, want 1", len(b.received))
	}
}

// panicProc blows up on its first delivery.
type panicProc struct{ id ProcID }

func (p *panicProc) ID() ProcID   { return p.id }
func (p *panicProc) Start(Sender) {}
func (p *panicProc) Deliver(Message, Sender) {
	panic("boom")
}

// TestNativeWorkerPanicContainment: a panic inside a drain worker surfaces as
// an annotated error from Run, for sequential and parallel drains alike.
func TestNativeWorkerPanicContainment(t *testing.T) {
	for _, parts := range []int{1, 2} {
		a := &pingProc{id: 0, peer: 1}
		sys, err := NewSystemOpts([]Process{a, &panicProc{id: 1}}, nil,
			Options{Native: &NativeOptions{Partitions: parts}})
		if err != nil {
			t.Fatal(err)
		}
		_, err = sys.Run(100, nil)
		if err == nil {
			t.Fatalf("partitions=%d: panic did not surface", parts)
		}
		if !strings.Contains(err.Error(), "panic in bus worker") || !strings.Contains(err.Error(), "boom") {
			t.Errorf("partitions=%d: error %q lacks worker panic annotation", parts, err)
		}
	}
}

// burstProc sends a burst of three messages on start.
type burstProc struct{ id, peer ProcID }

func (p *burstProc) ID() ProcID { return p.id }
func (p *burstProc) Start(send Sender) {
	for v := 0; v < 3; v++ {
		send(Message{From: p.id, To: p.peer, Kind: MsgBV, Value: v, Seq: int64(v)})
	}
}
func (p *burstProc) Deliver(Message, Sender) {}

// TestNativeEgressCap: sends beyond the per-window budget defer to the
// bounded egress buffer and drain FIFO on later windows — delayed, not lost.
func TestNativeEgressCap(t *testing.T) {
	a := &burstProc{id: 0, peer: 1}
	b := &collectProc{id: 1}
	sys, err := NewSystemOpts([]Process{a, b}, nil, Options{
		Bus:    BusOptions{EgressCap: 1},
		Native: &NativeOptions{Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 3 {
		t.Fatalf("deliveries = %d, want all 3 (deferred, not dropped)", len(b.received))
	}
	for i, m := range b.received {
		if m.Value != i {
			t.Fatalf("delivery order %v, want FIFO", b.received)
		}
	}
	if st := sys.BusStats(); st.EgressDrops != 0 {
		t.Errorf("EgressDrops = %d, want 0", st.EgressDrops)
	}

	// With QueueCap bounding the egress buffer too, the burst overflows:
	// exactly one copy is dropped at the egress bound.
	a2 := &burstProc{id: 0, peer: 1}
	b2 := &collectProc{id: 1}
	sys2, err := NewSystemOpts([]Process{a2, b2}, nil, Options{
		Bus:    BusOptions{EgressCap: 1, QueueCap: 1},
		Native: &NativeOptions{Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	st := sys2.BusStats()
	if st.EgressDrops != 1 {
		t.Errorf("EgressDrops = %d, want 1", st.EgressDrops)
	}
	if int64(len(b2.received))+st.EgressDrops+st.CapDrops != 3 {
		t.Errorf("accounting: delivered=%d egress_drops=%d cap_drops=%d, want total 3",
			len(b2.received), st.EgressDrops, st.CapDrops)
	}
}

// TestKadcastRouting: greedy XOR routing makes strict progress — every route
// terminates within ceil(log2 n)+1 hops and never loops.
func TestKadcastRouting(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 33} {
		k, err := NewKadcast(n)
		if err != nil {
			t.Fatal(err)
		}
		bound := 1
		for 1<<bound < n {
			bound++
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				at, hops := ProcID(src), 0
				for at != ProcID(dst) {
					next := k.NextHop(at, ProcID(dst))
					if next == at {
						t.Fatalf("n=%d: route %d->%d self-loops at %d", n, src, dst, at)
					}
					at = next
					hops++
					if hops > bound+1 {
						t.Fatalf("n=%d: route %d->%d exceeds %d hops", n, src, dst, bound+1)
					}
				}
			}
		}
	}
	if _, err := NewKadcast(1); err == nil {
		t.Error("NewKadcast(1) should error")
	}
}

// TestGossipDeliversThroughRelays: under the sparse topology a message to a
// non-neighbor traverses intermediate peers' queues and still arrives; the
// relay counter proves it did not shortcut.
func TestGossipDeliversThroughRelays(t *testing.T) {
	n := 8
	k, err := NewKadcast(n)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &collectProc{id: ProcID(i)}
	}
	sys, err := NewSystemOpts(procs, nil, Options{
		Bus:    BusOptions{Topology: k},
		Native: &NativeOptions{Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 5 = 0b101: not a single bit flip away, must relay.
	sys.Inject(Message{From: 0, To: 5, Kind: MsgBV, Value: 7})
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	dst := procs[5].(*collectProc)
	if len(dst.received) != 1 || dst.received[0].Value != 7 {
		t.Fatalf("destination received %v", dst.received)
	}
	st := sys.BusStats()
	if st.Relayed == 0 {
		t.Error("Relayed = 0, want at least one hop through a relay queue")
	}
	if st.TTLDrops != 0 {
		t.Errorf("TTLDrops = %d, want 0", st.TTLDrops)
	}

	// Sparse topologies cannot run under the compat Scheduler contract.
	if _, err := NewSystemOpts(procs, FIFOScheduler{}, Options{Bus: BusOptions{Topology: k}}); err == nil {
		t.Error("sparse topology without native mode should be rejected")
	}
}

// TestGossipAllPairsConsensusScale: a fuller sweep — every pair exchanges a
// message over kadcast and everything arrives exactly once (dupemap on).
func TestGossipAllPairsConsensusScale(t *testing.T) {
	n := 16
	k, err := NewKadcast(n)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &collectProc{id: ProcID(i)}
	}
	sys, err := NewSystemOpts(procs, nil, Options{
		Bus:    BusOptions{Topology: k, Dupemap: true},
		Native: &NativeOptions{Batch: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			sys.Inject(Message{From: ProcID(src), To: ProcID(dst), Kind: MsgBV, Value: src})
		}
	}
	if _, err := sys.Run(10_000, nil); err != nil {
		t.Fatal(err)
	}
	for i, p := range procs {
		if got := len(p.(*collectProc).received); got != n-1 {
			t.Errorf("peer %d received %d, want %d", i, got, n-1)
		}
	}
}

// TestFlatBackendRejectsBusOptions: the compatibility shim exposes none of
// the bus plumbing; asking for it is a configuration error, not a silent
// no-op.
func TestFlatBackendRejectsBusOptions(t *testing.T) {
	procs := []Process{&collectProc{id: 0}, &collectProc{id: 1}}
	cases := []Options{
		{Backend: BackendFlat, Bus: BusOptions{QueueCap: 1}},
		{Backend: BackendFlat, Bus: BusOptions{Dupemap: true}},
		{Backend: BackendFlat, Native: &NativeOptions{}},
	}
	for i, opts := range cases {
		if _, err := NewSystemOpts(procs, FIFOScheduler{}, opts); err == nil {
			t.Errorf("case %d: %+v accepted on the flat backend", i, opts)
		}
	}
	if _, err := NewSystemOpts(procs, nil, Options{Backend: BackendFlat}); err == nil {
		t.Error("flat backend without a scheduler should error")
	}
}

// TestCompatStallDetection: the stall detector also runs on the compat path —
// a scheduler that starves one peer's queue trips the flag.
func TestCompatStallDetection(t *testing.T) {
	a := &chatter{id: 0, all: []ProcID{0, 1}, horizon: 6}
	b := &chatter{id: 1, all: []ProcID{0, 1}, horizon: 6}
	starve := FuncScheduler(func(inflight []Message, _ int) int {
		for i, m := range inflight {
			if m.To == 0 {
				return i
			}
		}
		return 0
	})
	sys, err := NewSystemOpts([]Process{a, b}, starve, Options{Bus: BusOptions{StallK: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		ok, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	// Once the chatters quiesce the fallback arm delivers peer 1's backlog and
	// clears the flag again, so assert on the transition log: peer 1 must have
	// stalled at some point with at least StallK idle steps.
	found := false
	for _, ev := range sys.StallEvents() {
		if ev.Peer == 1 && ev.Idle >= 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("starved peer 1 never flagged; events=%+v", sys.StallEvents())
	}
}

// TestKeyStringInjective spot-checks the dupemap key over near-colliding
// messages (Seq must not participate; payload separators must not confuse).
func TestKeyStringInjective(t *testing.T) {
	msgs := []Message{
		{From: 1, To: 2, Kind: MsgBV, Value: 3},
		{From: 1, To: 2, Kind: MsgBV, Value: 3, Instance: 1},
		{From: 1, To: 2, Kind: MsgAux, Set: []int{1, 2}},
		{From: 1, To: 2, Kind: MsgAux, Set: []int{12}},
		{From: 1, To: 2, Kind: MsgEcho, Payload: "a|b"},
		{From: 1, To: 2, Kind: MsgEcho, Payload: "a", Proposer: 1},
	}
	keys := map[string]int{}
	for i, m := range msgs {
		k := m.KeyString()
		if j, dup := keys[k]; dup {
			t.Errorf("messages %d and %d collide on %q", i, j, k)
		}
		keys[k] = i
	}
	a := Message{From: 1, To: 2, Kind: MsgBV, Value: 3, Seq: 7}
	b := a
	b.Seq = 8
	if a.KeyString() != b.KeyString() {
		t.Error("Seq leaked into KeyString: retransmitted copies would never dedupe")
	}
	if fmt.Sprintf("%v", a.Key()) != fmt.Sprintf("%v", b.Key()) {
		t.Error("Key() should erase Seq")
	}
}
