package network

import (
	"fmt"
	"strings"
)

// FormatTrace renders a delivered-message trace as a numbered timeline.
// limit > 0 truncates the output (with a summary line); 0 prints everything.
func FormatTrace(msgs []Message, limit int) string {
	var b strings.Builder
	n := len(msgs)
	shown := n
	if limit > 0 && limit < n {
		shown = limit
	}
	for i := 0; i < shown; i++ {
		fmt.Fprintf(&b, "%4d  %s\n", i+1, msgs[i])
	}
	if shown < n {
		fmt.Fprintf(&b, "      ... %d more deliveries\n", n-shown)
	}
	return b.String()
}

// TraceStats summarizes a trace: deliveries by kind and by round.
type TraceStats struct {
	Total    int
	ByKind   map[MsgKind]int
	ByRound  map[int]int
	MaxRound int
}

// SummarizeTrace computes delivery statistics.
func SummarizeTrace(msgs []Message) TraceStats {
	s := TraceStats{ByKind: map[MsgKind]int{}, ByRound: map[int]int{}}
	for _, m := range msgs {
		s.Total++
		s.ByKind[m.Kind]++
		s.ByRound[m.Round]++
		if m.Round > s.MaxRound {
			s.MaxRound = m.Round
		}
	}
	return s
}

// Format renders the statistics.
func (s TraceStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d deliveries", s.Total)
	for _, k := range []MsgKind{MsgBV, MsgAux, MsgProp, MsgEcho, MsgReady} {
		if c := s.ByKind[k]; c > 0 {
			fmt.Fprintf(&b, ", %d %s", c, k)
		}
	}
	fmt.Fprintf(&b, "; rounds 0..%d:", s.MaxRound)
	for r := 0; r <= s.MaxRound; r++ {
		fmt.Fprintf(&b, " %d", s.ByRound[r])
	}
	return b.String()
}
