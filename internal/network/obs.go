package network

import "repro/internal/obs"

// Bus counters (observational only — deterministic verdicts come from the
// fault plane's per-seed event folds, never from process-wide counters).
var (
	obsEnqueued    = obs.Default.Counter("network", "bus_enqueued")
	obsDelivered   = obs.Default.Counter("network", "bus_delivered")
	obsRelayed     = obs.Default.Counter("network", "bus_relayed")
	obsCapDrops    = obs.Default.Counter("network", "bus_cap_drops")
	obsEgressDrops = obs.Default.Counter("network", "bus_egress_drops")
	obsFiltered    = obs.Default.Counter("network", "bus_dupemap_filtered")
	obsStalls      = obs.Default.Counter("network", "bus_stalls")
	obsPeakDepth   = obs.Default.Gauge("network", "bus_peak_depth")
)
