package network

import "fmt"

// Topology decides how a message physically travels from its sender to its
// destination. The base network is fully connected — every pair of processes
// shares a direct authenticated link — but the bus also supports sparse
// gossip overlays where a message is relayed hop by hop through intermediate
// peers' queues. Topologies are consulted only by the bus's native drain
// mode; the flat-loop compatibility shim is always fully connected, because
// the adversarial Scheduler contract exposes end-to-end messages, not hops.
type Topology interface {
	// NextHop returns the next peer on the route from at to dst. It must
	// return dst itself when at has a direct link (or when at == dst), and
	// must make strict progress: repeatedly applying NextHop from any peer
	// reaches dst in a bounded number of hops.
	NextHop(at, dst ProcID) ProcID
	// Neighbors returns the peers `of` has direct links to, or nil when the
	// topology is fully connected.
	Neighbors(of ProcID) []ProcID
	// Name identifies the topology in stats and scenario encodings.
	Name() string
}

// FullMesh is the paper's system model: a reliable fully-connected
// point-to-point network. Every message is delivered on a direct link.
type FullMesh struct{}

// NextHop implements Topology.
func (FullMesh) NextHop(_, dst ProcID) ProcID { return dst }

// Neighbors implements Topology (nil = everyone).
func (FullMesh) Neighbors(ProcID) []ProcID { return nil }

// Name implements Topology.
func (FullMesh) Name() string { return "full" }

// Kadcast is a kadcast-style structured gossip overlay: peer IDs are treated
// as points in an XOR metric space and each peer keeps one link per distance
// bucket (the peer obtained by flipping one bit of its own ID, when that ID
// exists). Routing is greedy: forward to the neighbor strictly closest to
// the destination in XOR distance, falling back to a direct link when no
// neighbor improves on it. Because the XOR distance to the destination
// strictly decreases at every hop the route is loop-free and at most
// ceil(log2 n) hops long on power-of-two populations.
type Kadcast struct {
	n int
}

// NewKadcast builds the overlay for processes 0..n-1.
func NewKadcast(n int) (*Kadcast, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: kadcast needs at least 2 processes, got %d", n)
	}
	return &Kadcast{n: n}, nil
}

// Neighbors implements Topology: the single-bit-flip peers that exist.
func (k *Kadcast) Neighbors(of ProcID) []ProcID {
	var out []ProcID
	for b := 0; 1<<b < k.n; b++ {
		nb := int(of) ^ (1 << b)
		if nb < k.n {
			out = append(out, ProcID(nb))
		}
	}
	return out
}

// NextHop implements Topology: greedy XOR-distance routing with a direct
// fallback. Populations that are not powers of two leave holes in the bucket
// structure (the flipped ID may not exist); the direct fallback keeps those
// routes valid, it just makes them one hop.
func (k *Kadcast) NextHop(at, dst ProcID) ProcID {
	if at == dst {
		return dst
	}
	best := dst // direct long link: distance 0, always strict progress
	bestD := int(at) ^ int(dst)
	for b := 0; 1<<b < k.n; b++ {
		nb := int(at) ^ (1 << b)
		if nb >= k.n {
			continue
		}
		if d := nb ^ int(dst); d < bestD {
			best, bestD = ProcID(nb), d
		}
	}
	return best
}

// Name implements Topology.
func (k *Kadcast) Name() string { return "gossip" }
