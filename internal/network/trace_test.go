package network

import (
	"strings"
	"testing"
)

func TestFormatTrace(t *testing.T) {
	msgs := []Message{
		{From: 0, To: 1, Round: 0, Kind: MsgBV, Value: 1},
		{From: 1, To: 0, Round: 0, Kind: MsgAux, Set: []int{0, 1}},
		{From: 2, To: 0, Round: 1, Kind: MsgBV, Value: 0},
	}
	out := FormatTrace(msgs, 0)
	if strings.Count(out, "\n") != 3 {
		t.Errorf("expected 3 lines:\n%s", out)
	}
	trunc := FormatTrace(msgs, 2)
	if !strings.Contains(trunc, "1 more deliveries") {
		t.Errorf("missing truncation note:\n%s", trunc)
	}
	if FormatTrace(nil, 5) != "" {
		t.Error("empty trace should render empty")
	}
}

func TestSummarizeTrace(t *testing.T) {
	msgs := []Message{
		{Kind: MsgBV, Round: 0},
		{Kind: MsgBV, Round: 1},
		{Kind: MsgAux, Round: 1},
		{Kind: MsgProp, Round: 0},
	}
	s := SummarizeTrace(msgs)
	if s.Total != 4 || s.MaxRound != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByKind[MsgBV] != 2 || s.ByKind[MsgAux] != 1 || s.ByKind[MsgProp] != 1 {
		t.Errorf("by kind = %v", s.ByKind)
	}
	out := s.Format()
	for _, want := range []string{"4 deliveries", "2 BV", "1 AUX", "1 PROP", "rounds 0..1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
}
