package network

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// stepWindow advances one native drain window. Each window:
//
//  1. advances the clock and notifies StepTap (the fault injector);
//  2. drains each peer's deferred egress buffer (EgressCap overflow from
//     earlier windows), FIFO, up to the per-window budget;
//  3. lets every peer pop up to Batch eligible entries FIFO from its own
//     ingress queue and deliver them — split across Partitions worker
//     goroutines by peer index, each process's state touched only by its
//     owning worker, with handler sends buffered per peer;
//  4. merges the buffered sends and gossip relays back onto the bus in
//     ascending peer-id order — so enqueue arrival order, and with it every
//     downstream fingerprint, is independent of the partition count;
//  5. runs the stall scan and the periodic tick.
//
// An entry is eligible when its notBefore delay has expired and the fault
// plane's CutTap does not sever its physical link. Held entries are skipped
// (bounded by ScanLimit) rather than blocking the queue head.
func (s *System) stepWindow() (bool, error) {
	if !s.started {
		s.start()
	}
	s.Steps++
	step := s.Steps
	if s.StepTap != nil {
		s.StepTap(step)
	}
	n := len(s.order)
	nat := s.native
	parts := nat.Partitions
	if parts > n {
		parts = n
	}

	// Phase 2: drain deferred egress under a fresh per-window send budget.
	egressDrained := 0
	if s.bus.opts.EgressCap > 0 {
		for i := range s.egressUsed {
			s.egressUsed[i] = 0
		}
		for qi := range s.bus.queues {
			q := &s.bus.queues[qi]
			for q.egressDepth() > 0 && s.egressUsed[qi] < s.bus.opts.EgressCap {
				m := q.egressPop()
				s.egressUsed[qi]++
				egressDrained++
				if s.SendTap != nil {
					from := m.From
					for _, c := range s.SendTap(m) {
						c.From = from
						s.enqueue(c)
					}
				} else {
					s.enqueue(m)
				}
			}
		}
	}

	// Phase 3: parallel drain. Worker w owns peers w, w+parts, w+2*parts...
	errs := make([]error, parts)
	drain := func(w int) {
		defer func() {
			if r := recover(); r != nil {
				errs[w] = fmt.Errorf("network: panic in bus worker %d at step %d: %v\n%s", w, step, r, debug.Stack())
			}
		}()
		for qi := w; qi < n; qi += parts {
			d := &s.drains[qi]
			d.delivered = d.delivered[:0]
			d.sends = d.sends[:0]
			d.relays = d.relays[:0]
			d.taken = 0
			d.filtered = 0
			q := &s.bus.queues[qi]
			proc := s.procs[q.id]
			sendBuf := func(m Message) { d.sends = append(d.sends, m) }
			scanned := 0
			for i := 0; i < q.depth() && d.taken < nat.Batch && scanned < nat.ScanLimit; {
				e := q.at(i)
				scanned++
				if e.notBefore > step || (s.CutTap != nil && s.CutTap(e.hopFrom, q.id, step)) {
					i++ // held: skip, keep scanning
					continue
				}
				ent := q.removeAt(i) // the next entry slides into index i
				d.taken++
				if ent.msg.To != q.id {
					d.relays = append(d.relays, ent)
					continue
				}
				if q.seen != nil {
					k := ent.msg.KeyString()
					if q.seen.has(k) {
						d.filtered++
						continue
					}
					q.seen.add(k)
				}
				d.delivered = append(d.delivered, ent.msg)
				proc.Deliver(ent.msg, sendBuf)
			}
			if d.taken > 0 {
				q.lastProgress = step
				q.stalled = false
			}
		}
	}
	if parts <= 1 {
		drain(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(parts)
		for w := 0; w < parts; w++ {
			go func(w int) {
				defer wg.Done()
				drain(w)
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}

	// Phase 4: deterministic merge in ascending peer-id order.
	deliveredTotal, removed := 0, 0
	for qi, id := range s.order {
		d := &s.drains[qi]
		removed += d.taken
		deliveredTotal += len(d.delivered)
		s.bus.stats.Delivered += int64(len(d.delivered))
		s.bus.stats.Filtered += d.filtered
		obsDelivered.Add(int64(len(d.delivered)))
		if d.filtered > 0 {
			obsFiltered.Add(d.filtered)
		}
		if s.RecordTrace {
			s.Trace = append(s.Trace, d.delivered...)
		}
		s.sender = id
		for _, m := range d.sends {
			s.send(m)
		}
		for _, e := range d.relays {
			s.bus.forward(e, id)
		}
	}
	s.bus.size -= removed

	// Phase 5: stall scan and periodic tick.
	s.bus.scanStalls(step)
	s.tick()

	if removed == 0 && egressDrained == 0 && s.Inflight() == 0 && s.TickInterval <= 0 {
		return false, nil // quiescent: nothing queued, no timers to wait on
	}
	return true, nil
}
