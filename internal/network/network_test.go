package network

import (
	"math/rand"
	"testing"
)

// pingProc sends one message to its peer on start and counts deliveries.
type pingProc struct {
	id       ProcID
	peer     ProcID
	received []Message
	relay    bool
}

func (p *pingProc) ID() ProcID { return p.id }
func (p *pingProc) Start(send Sender) {
	send(Message{From: p.id, To: p.peer, Round: 0, Kind: MsgBV, Value: int(p.id)})
}
func (p *pingProc) Deliver(m Message, send Sender) {
	p.received = append(p.received, m)
	if p.relay && m.Round < 3 {
		send(Message{From: p.id, To: p.peer, Round: m.Round + 1, Kind: MsgBV, Value: m.Value})
	}
}

func TestSystemBasics(t *testing.T) {
	a := &pingProc{id: 0, peer: 1}
	b := &pingProc{id: 1, peer: 0}
	sys, err := NewSystem([]Process{a, b}, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sys.Run(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 2 {
		t.Errorf("steps = %d, want 2", steps)
	}
	if len(a.received) != 1 || len(b.received) != 1 {
		t.Errorf("deliveries: a=%d b=%d, want 1 each", len(a.received), len(b.received))
	}
}

func TestSystemRelayAndStop(t *testing.T) {
	a := &pingProc{id: 0, peer: 1, relay: true}
	b := &pingProc{id: 1, peer: 0, relay: true}
	sys, err := NewSystem([]Process{a, b}, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	sys.RecordTrace = true
	_, err = sys.Run(0, func() bool { return len(a.received) >= 2 })
	if err != nil {
		t.Fatal(err)
	}
	if len(a.received) < 2 {
		t.Error("stop predicate never satisfied")
	}
	if len(sys.Trace) != sys.Steps {
		t.Errorf("trace length %d != steps %d", len(sys.Trace), sys.Steps)
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, FIFOScheduler{}); err == nil {
		t.Error("empty process list should error")
	}
	a := &pingProc{id: 0, peer: 0}
	if _, err := NewSystem([]Process{a}, nil); err == nil {
		t.Error("nil scheduler should error")
	}
	if _, err := NewSystem([]Process{a, &pingProc{id: 0}}, FIFOScheduler{}); err == nil {
		t.Error("duplicate ids should error")
	}
}

func TestSendToUnknownProcessDropped(t *testing.T) {
	a := &pingProc{id: 0, peer: 99} // peer does not exist
	sys, err := NewSystem([]Process{a}, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10, nil); err != nil {
		t.Fatal(err)
	}
	if sys.DroppedPast != 1 {
		t.Errorf("dropped = %d, want 1", sys.DroppedPast)
	}
}

func TestRandomSchedulerDeliversEverything(t *testing.T) {
	a := &pingProc{id: 0, peer: 1, relay: true}
	b := &pingProc{id: 1, peer: 0, relay: true}
	sys, err := NewSystem([]Process{a, b}, RandomScheduler{Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(1000, nil); err != nil {
		t.Fatal(err)
	}
	if sys.Inflight() != 0 {
		t.Errorf("inflight = %d after quiescence", sys.Inflight())
	}
	// relay chains: rounds 0..3 per direction
	if len(a.received) != 4 || len(b.received) != 4 {
		t.Errorf("deliveries a=%d b=%d, want 4 each", len(a.received), len(b.received))
	}
}

func TestPriorityScheduler(t *testing.T) {
	// Prefer higher-value messages (key = -value).
	a := &pingProc{id: 0, peer: 1}
	b := &pingProc{id: 1, peer: 0}
	sys, err := NewSystem([]Process{a, b}, PriorityScheduler{
		Key: func(m Message) int { return -m.Value },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := sys.Step(); err != nil || !ok {
		t.Fatal(ok, err)
	}
	// The message from process 1 (value 1) must have been delivered first.
	if len(a.received) != 1 || a.received[0].Value != 1 {
		t.Errorf("priority scheduler delivered wrong message first: a=%v b=%v", a.received, b.received)
	}
}

func TestFuncSchedulerAndErrors(t *testing.T) {
	a := &pingProc{id: 0, peer: 1}
	b := &pingProc{id: 1, peer: 0}
	sys, err := NewSystem([]Process{a, b}, FuncScheduler(func(inflight []Message, _ int) int {
		return len(inflight) // out of range: must surface as error
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(); err == nil {
		t.Error("out-of-range scheduler choice should error")
	}
}

func TestMessageString(t *testing.T) {
	bv := Message{From: 1, To: 2, Round: 3, Kind: MsgBV, Value: 1}
	if got := bv.String(); got != "BV(r3,1) 1->2" {
		t.Errorf("String = %q", got)
	}
	aux := Message{From: 0, To: 1, Round: 2, Kind: MsgAux, Set: []int{0, 1}}
	if got := aux.String(); got != "AUX(r2,{0,1}) 0->1" {
		t.Errorf("String = %q", got)
	}
}

// forger tries to impersonate process 0 when sending.
type forger struct {
	id       ProcID
	received []Message
}

func (f *forger) ID() ProcID { return f.id }
func (f *forger) Start(send Sender) {
	send(Message{From: 0, To: 1, Round: 0, Kind: MsgBV, Value: 0}) // forged From
}
func (f *forger) Deliver(m Message, _ Sender) { f.received = append(f.received, m) }

// sink receives and records without sending.
type sink struct {
	id       ProcID
	received []Message
}

func (s *sink) ID() ProcID                  { return s.id }
func (s *sink) Start(Sender)                {}
func (s *sink) Deliver(m Message, _ Sender) { s.received = append(s.received, m) }

// TestSenderAuthentication: channels are authenticated point-to-point links,
// so the network stamps the true sender — a Byzantine process cannot forge
// another process's identity to defeat distinct-sender thresholds.
func TestSenderAuthentication(t *testing.T) {
	receiver := &sink{id: 1}
	sys, err := NewSystem([]Process{&forger{id: 3}, receiver}, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10, nil); err != nil {
		t.Fatal(err)
	}
	if len(receiver.received) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(receiver.received))
	}
	if got := receiver.received[0].From; got != 3 {
		t.Errorf("From = %d, want the true sender 3 (forgery must be corrected)", got)
	}
}

// collectProc records deliveries and nothing else.
type collectProc struct {
	id       ProcID
	received []Message
}

func (p *collectProc) ID() ProcID                  { return p.id }
func (p *collectProc) Start(Sender)                {}
func (p *collectProc) Deliver(m Message, _ Sender) { p.received = append(p.received, m) }

// TestBroadcastIncludesSelf: the paper's broadcast primitive delivers to the
// sender too, and the self-copy goes through the network like any other
// message — it is scheduled, not short-circuited.
func TestBroadcastIncludesSelf(t *testing.T) {
	procs := []Process{&collectProc{id: 0}, &collectProc{id: 1}, &collectProc{id: 2}}
	sys, err := NewSystem(procs, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	var sent int
	send := func(m Message) { sent++; sys.Inject(m) }
	Broadcast(send, []ProcID{0, 1, 2}, Message{From: 0, Kind: MsgBV, Value: 1})
	if sent != 3 {
		t.Fatalf("broadcast enqueued %d copies, want 3 (self included)", sent)
	}
	if sys.Inflight() != 3 {
		t.Fatalf("in-flight = %d before any delivery, want 3: self-delivery must be scheduled, not immediate", sys.Inflight())
	}
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		cp := p.(*collectProc)
		if len(cp.received) != 1 {
			t.Errorf("process %d received %d copies, want 1", cp.id, len(cp.received))
		}
	}
}

// TestBroadcastDuplicateTargets: a duplicated id in the target list means two
// copies — Broadcast does not deduplicate; receivers' idempotence is what
// absorbs the repeat.
func TestBroadcastDuplicateTargets(t *testing.T) {
	a := &collectProc{id: 0}
	b := &collectProc{id: 1}
	sys, err := NewSystem([]Process{a, b}, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	Broadcast(sys.Inject, []ProcID{1, 1, 0}, Message{From: 0, Kind: MsgBV, Value: 1})
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 2 {
		t.Errorf("duplicated target received %d copies, want 2", len(b.received))
	}
	if len(a.received) != 1 {
		t.Errorf("singleton target received %d copies, want 1", len(a.received))
	}
}

// TestBroadcastToUnknownTargets: ids outside the system are counted as
// dropped, the rest still deliver.
func TestBroadcastToUnknownTargets(t *testing.T) {
	a := &collectProc{id: 0}
	sys, err := NewSystem([]Process{a}, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	Broadcast(sys.Inject, []ProcID{0, 7, 9}, Message{From: 0, Kind: MsgBV, Value: 1})
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if len(a.received) != 1 {
		t.Errorf("known target received %d copies, want 1", len(a.received))
	}
	if sys.DroppedPast != 2 {
		t.Errorf("DroppedPast = %d, want 2", sys.DroppedPast)
	}
}

// TestBroadcastPreservesSendOrder: under FIFO the copies arrive in target
// order, so a process broadcasting to [self, peer] sees its own copy first —
// the ordering the bv-broadcast echo rules implicitly rely on.
func TestBroadcastPreservesSendOrder(t *testing.T) {
	a := &collectProc{id: 0}
	b := &collectProc{id: 1}
	sys, err := NewSystem([]Process{a, b}, FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	Broadcast(sys.Inject, []ProcID{0, 1}, Message{From: 0, Kind: MsgBV, Value: 0})
	Broadcast(sys.Inject, []ProcID{0, 1}, Message{From: 0, Kind: MsgBV, Value: 1})
	trace := []int{}
	sys.RecordTrace = true
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	for _, m := range sys.Trace {
		trace = append(trace, m.Value)
	}
	want := []int{0, 0, 1, 1}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("FIFO delivery order %v, want %v", trace, want)
		}
	}
}
