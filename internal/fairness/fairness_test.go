package fairness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dbft"
	"repro/internal/network"
)

func run(t *testing.T, inputs []int, cfg dbft.Config, byz []network.Process, sched network.Scheduler) (*network.System, []*dbft.Process) {
	t.Helper()
	all := dbft.AllIDs(cfg.N)
	correct, err := dbft.Processes(cfg, inputs, all)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]network.Process, 0, cfg.N)
	for _, p := range correct {
		procs = append(procs, p)
	}
	procs = append(procs, byz...)
	sys, err := network.NewSystem(procs, sched)
	if err != nil {
		t.Fatal(err)
	}
	return sys, correct
}

// TestTerminationUnderFairScheduler is the simulator counterpart of
// Theorem 6: under the fairness-realizing scheduler, every input vector and
// every Byzantine strategy we throw at DBFT terminates, and a good round
// exists (the Definition 3 witness).
func TestTerminationUnderFairScheduler(t *testing.T) {
	byzSet := map[network.ProcID]bool{3: true}
	strategies := map[string]func(all []network.ProcID, rng *rand.Rand) network.Process{
		"silent": func(all []network.ProcID, _ *rand.Rand) network.Process {
			return &dbft.Silent{Id: 3}
		},
		"equivocator": func(all []network.ProcID, _ *rand.Rand) network.Process {
			return &dbft.Equivocator{Id: 3, All: all, ZeroSide: func(p network.ProcID) bool { return p == 0 }}
		},
		"liar": func(all []network.ProcID, rng *rand.Rand) network.Process {
			return &dbft.RandomLiar{Id: 3, All: all, Rng: rng}
		},
	}
	for name, mk := range strategies {
		for bits := 0; bits < 8; bits++ {
			inputs := []int{bits & 1, (bits >> 1) & 1, (bits >> 2) & 1}
			cfg := dbft.Config{N: 4, T: 1, MaxRounds: 12}
			rng := rand.New(rand.NewSource(int64(bits)))
			byz := mk(dbft.AllIDs(cfg.N), rng)
			sys, correct := run(t, inputs, cfg, []network.Process{byz}, Scheduler{Byzantine: byzSet})
			steps, done, err := RunToDecision(sys, correct, 500000)
			if err != nil {
				t.Fatal(err)
			}
			if !done {
				t.Errorf("%s inputs=%v: no termination after %d steps:\n%s",
					name, inputs, steps, dbft.Describe(correct))
				continue
			}
			if err := dbft.Agreement(correct); err != nil {
				t.Errorf("%s inputs=%v: %v", name, inputs, err)
			}
			if err := dbft.Validity(correct, inputs); err != nil {
				t.Errorf("%s inputs=%v: %v", name, inputs, err)
			}
			if g := FirstGoodRound(correct, cfg.MaxRounds); g < 0 {
				t.Errorf("%s inputs=%v: terminated without a good round witness", name, inputs)
			}
		}
	}
}

// TestGoodRoundImpliesQuickDecision checks Lemma 4 + Theorem 6 empirically:
// once a round r is (r mod 2)-good, every correct process decides by round
// r+2.
func TestGoodRoundImpliesQuickDecision(t *testing.T) {
	prop := func(seed int64, bits uint8) bool {
		inputs := []int{int(bits) & 1, int(bits>>1) & 1, int(bits>>2) & 1}
		cfg := dbft.Config{N: 4, T: 1, MaxRounds: 12}
		rng := rand.New(rand.NewSource(seed))
		byz := &dbft.RandomLiar{Id: 3, All: dbft.AllIDs(cfg.N), Rng: rng}
		sys, correct := run(t, inputs, cfg, []network.Process{byz}, Scheduler{Byzantine: map[network.ProcID]bool{3: true}})
		_, done, err := RunToDecision(sys, correct, 500000)
		if err != nil || !done {
			return false
		}
		g := FirstGoodRound(correct, cfg.MaxRounds)
		if g < 0 {
			return false
		}
		for _, p := range correct {
			_, round, ok := p.Decided()
			if !ok || round > g+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGoodRoundDetection exercises the Definition 2 detector directly.
func TestGoodRoundDetection(t *testing.T) {
	// Unanimous value 0 in round 0: the round is 0-good, and 0 == parity.
	cfg := dbft.Config{N: 4, T: 1, MaxRounds: 6}
	sys, correct := run(t, []int{0, 0, 0}, cfg,
		[]network.Process{&dbft.Silent{Id: 3}}, network.FIFOScheduler{})
	if _, _, err := RunToDecision(sys, correct, 200000); err != nil {
		t.Fatal(err)
	}
	if !GoodRound(correct, 0) {
		t.Error("round 0 with unanimous 0 should be 0-good")
	}
	// Unanimous value 1: round 0 is 1-good but 1 != parity(0), so not a
	// fairness witness for round 0; round 1 must be.
	sys, correct = run(t, []int{1, 1, 1}, cfg,
		[]network.Process{&dbft.Silent{Id: 3}}, network.FIFOScheduler{})
	if _, _, err := RunToDecision(sys, correct, 200000); err != nil {
		t.Fatal(err)
	}
	if GoodRound(correct, 0) {
		t.Error("round 0 with unanimous 1 is 1-good, which is not the parity")
	}
	if FirstGoodRound(correct, cfg.MaxRounds) != 1 {
		t.Errorf("first good round = %d, want 1", FirstGoodRound(correct, cfg.MaxRounds))
	}
}
