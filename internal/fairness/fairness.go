// Package fairness implements the fairness machinery of Section 3.3: the
// detection of v-good bv-broadcast executions (Definition 2), the fairness
// of infinite execution sequences (Definition 3), and a scheduler that makes
// the assumption hold — under which Algorithm 1 terminates (Theorem 6).
package fairness

import (
	"repro/internal/dbft"
	"repro/internal/network"
)

// GoodRound reports whether round r of the recorded execution was
// (r mod 2)-good: every correct process bv-delivered the round's parity
// value first (Definitions 2 and 3 — the existence of one such round in an
// infinite run makes the run fair).
func GoodRound(procs []*dbft.Process, r int) bool {
	v, good := dbft.GoodValue(procs, r)
	return good && v == r%2
}

// FirstGoodRound returns the first fair witness round within [0, maxRound],
// or -1 if none exists.
func FirstGoodRound(procs []*dbft.Process, maxRound int) int {
	for r := 0; r <= maxRound; r++ {
		if GoodRound(procs, r) {
			return r
		}
	}
	return -1
}

// Scheduler realizes the fairness assumption: it prioritizes messages from
// correct processes over Byzantine ones, lower rounds over higher ones, and
// within a round's BV messages the parity value first. Under this schedule
// some round is eventually (r mod 2)-good, so DBFT terminates.
type Scheduler struct {
	// Byzantine flags the adversary-controlled sender ids.
	Byzantine map[network.ProcID]bool
}

var _ network.Scheduler = Scheduler{}

// Next implements network.Scheduler.
func (s Scheduler) Next(inflight []network.Message, step int) int {
	best, bestKey := 0, s.key(inflight[0])
	for i := 1; i < len(inflight); i++ {
		if k := s.key(inflight[i]); k < bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

func (s Scheduler) key(m network.Message) int {
	// Reliable-broadcast traffic (vector-consensus proposals) first: it is
	// the prerequisite for starting the binary instances.
	switch m.Kind {
	case network.MsgProp, network.MsgEcho, network.MsgReady:
		if s.Byzantine[m.From] {
			return 1
		}
		return 0
	}
	// Then by instance and round, correct senders before Byzantine ones,
	// parity-value broadcasts first within a round (they make it good).
	k := 16 + m.Instance*1024 + m.Round*8
	if s.Byzantine[m.From] {
		k += 4
	}
	switch {
	case m.Kind == network.MsgBV && m.Value == m.Round%2:
		// parity-value broadcasts first
	case m.Kind == network.MsgBV:
		k += 1
	default:
		k += 2
	}
	return k
}

// RunToDecision drives a system of correct and Byzantine processes under the
// given scheduler until every correct process decides (or the step budget is
// exhausted). It returns the steps taken and whether all decided.
func RunToDecision(sys *network.System, correct []*dbft.Process, maxSteps int) (int, bool, error) {
	steps, err := sys.Run(maxSteps, func() bool { return dbft.AllDecided(correct) })
	if err != nil {
		return steps, false, err
	}
	return steps, dbft.AllDecided(correct), nil
}
