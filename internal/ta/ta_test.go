package ta

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

// toyTA builds a small two-phase automaton:
//
//	A --r1[true]/x++--> B --r2[x>=t+1-f]/y++--> C
//	A --r3[y>=1]-----> D
//	C --rs(dotted)---> A
func toyTA(t *testing.T) *TA {
	t.Helper()
	b := NewBuilder("toy")
	x := b.Shared("x")
	y := b.Shared("y")
	locA := b.Loc("A", Initial())
	locB := b.Loc("B")
	locC := b.Loc("C")
	locD := b.Loc("D")
	b.Rule("r1", locA, locB, Inc(x))
	b.Rule("r2", locB, locC,
		Guarded(b.GeThreshold(x, b.Lin(1, LinTerm{Coeff: 1, Sym: b.T()}, LinTerm{Coeff: -1, Sym: b.F()}))),
		Inc(y))
	b.Rule("r3", locA, locD, Guarded(b.GeThreshold(y, b.Lin(1))))
	b.Rule("rs", locC, locA, RoundSwitch())
	b.SelfLoop(locC)
	b.SelfLoop(locD)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuilderBasics(t *testing.T) {
	a := toyTA(t)
	if got := len(a.Locations); got != 4 {
		t.Errorf("locations = %d, want 4", got)
	}
	if got := len(a.Rules); got != 6 {
		t.Errorf("rules = %d, want 6 (incl. self-loops and round switch)", got)
	}
	size := a.Size()
	if size.Rules != 6 {
		t.Errorf("Size.Rules = %d, want 6 (all rules counted)", size.Rules)
	}
	if size.UniqueGuards != 2 {
		t.Errorf("unique guards = %d, want 2", size.UniqueGuards)
	}
	init := a.InitialLocs()
	if len(init) != 1 || a.Locations[init[0]].Name != "A" {
		t.Errorf("initial locations = %v", init)
	}
	fin := a.FinalLocs()
	if len(fin) != 2 {
		t.Errorf("final locations = %v, want C and D", fin)
	}
}

func TestLocLookup(t *testing.T) {
	a := toyTA(t)
	id, err := a.LocByName("B")
	if err != nil {
		t.Fatal(err)
	}
	if a.Locations[id].Name != "B" {
		t.Errorf("LocByName returned wrong location")
	}
	if _, err := a.LocByName("nope"); err == nil {
		t.Error("expected error for unknown location")
	}
	if _, err := a.SharedByName("x"); err != nil {
		t.Errorf("SharedByName(x): %v", err)
	}
	if _, err := a.SharedByName("n"); err == nil {
		t.Error("parameter n should not resolve as shared variable")
	}
	if _, err := a.SharedByName("zzz"); err == nil {
		t.Error("unknown name should not resolve as shared variable")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	b := NewBuilder("cyclic")
	locA := b.Loc("A", Initial())
	locB := b.Loc("B")
	b.Rule("r1", locA, locB)
	b.Rule("r2", locB, locA)
	if _, err := b.Build(); err == nil {
		t.Error("expected cycle detection error")
	}
}

func TestValidateRejectsFallingGuard(t *testing.T) {
	b := NewBuilder("falling")
	x := b.Shared("x")
	locA := b.Loc("A", Initial())
	locB := b.Loc("B")
	// guard -x >= -2 (i.e. x <= 2) is falling.
	l := expr.Term(x, -1)
	if err := l.AddConst(2); err != nil {
		t.Fatal(err)
	}
	b.Rule("r1", locA, locB, Guarded(expr.GEZero(l)))
	if _, err := b.Build(); err == nil {
		t.Error("expected rising-guard violation")
	}
}

func TestValidateRejectsNoInitial(t *testing.T) {
	b := NewBuilder("noinit")
	b.Loc("A")
	if _, err := b.Build(); err == nil {
		t.Error("expected no-initial-location error")
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	b := NewBuilder("dup")
	b.Loc("A", Initial())
	b.Loc("A")
	if _, err := b.Build(); err == nil {
		t.Error("expected duplicate-name error")
	}
}

func TestTopoOrderAndDepth(t *testing.T) {
	a := toyTA(t)
	order, err := a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[LocID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, r := range a.Rules {
		if r.SelfLoop() || r.RoundSwitch {
			continue
		}
		if pos[r.From] >= pos[r.To] {
			t.Errorf("rule %s violates topological order", r.Name)
		}
	}
	depth, err := a.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if depth[a.MustLoc("A")] != 0 || depth[a.MustLoc("B")] != 1 || depth[a.MustLoc("C")] != 2 {
		t.Errorf("depth = %v", depth)
	}
}

func TestOneRound(t *testing.T) {
	a := toyTA(t)
	or := a.OneRound()
	for _, r := range or.Rules {
		if r.RoundSwitch {
			t.Errorf("one-round TA retains round-switch rule %s", r.Name)
		}
	}
	if len(or.Rules) != len(a.Rules)-1 {
		t.Errorf("one-round rules = %d, want %d", len(or.Rules), len(a.Rules)-1)
	}
	// A remains initial and no new initial appears (A was the only target).
	init := or.InitialLocs()
	if len(init) != 1 || or.Locations[init[0]].Name != "A" {
		t.Errorf("one-round initial locations = %v", init)
	}
}

func TestClosureChecks(t *testing.T) {
	a := toyTA(t)
	// {C} is pred-closed? r2 enters C from B (outside) -> no.
	setC := NewLocSet(a.MustLoc("C"))
	if err := a.PredClosed(setC); err == nil {
		t.Error("{C} should not be predecessor-closed")
	}
	// {B, C} is pred-closed? r1 enters B from A -> no.
	setBC := NewLocSet(a.MustLoc("B"), a.MustLoc("C"))
	if err := a.PredClosed(setBC); err == nil {
		t.Error("{B,C} should not be predecessor-closed")
	}
	// {A, B, C, D} trivially both closed.
	all := NewLocSet(0, 1, 2, 3)
	if err := a.PredClosed(all); err != nil {
		t.Errorf("full set: %v", err)
	}
	if err := a.SuccClosed(all); err != nil {
		t.Errorf("full set: %v", err)
	}
	// {C} is successor-closed (only self-loop and round-switch leave it).
	if err := a.SuccClosed(setC); err != nil {
		t.Errorf("{C} should be successor-closed: %v", err)
	}
	// {A} is not successor-closed (r1 escapes).
	if err := a.SuccClosed(NewLocSet(a.MustLoc("A"))); err == nil {
		t.Error("{A} should not be successor-closed")
	}
	// D has incoming edge r3; B has incoming r1; none are source-free except A.
	if !a.NoIncoming(a.MustLoc("A")) {
		t.Error("A should have no incoming edges")
	}
	if a.NoIncoming(a.MustLoc("D")) {
		t.Error("D has incoming edge r3")
	}
}

func TestLocSetByName(t *testing.T) {
	a := toyTA(t)
	s, err := a.LocSetByName("A", "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || !s[a.MustLoc("A")] || !s[a.MustLoc("C")] {
		t.Errorf("set = %v", s)
	}
	if got := s.String(a); got != "{A,C}" {
		t.Errorf("String = %q", got)
	}
	if _, err := a.LocSetByName("A", "nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestWriteDOT(t *testing.T) {
	a := toyTA(t)
	var sb strings.Builder
	if err := a.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "doublecircle", "style=dotted", "x++", "r2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestGuardString(t *testing.T) {
	a := toyTA(t)
	var r2 Rule
	for _, r := range a.Rules {
		if r.Name == "r2" {
			r2 = r
		}
	}
	got := a.GuardString(r2)
	if !strings.Contains(got, "x") || !strings.Contains(got, ">=") {
		t.Errorf("GuardString = %q", got)
	}
	var r1 Rule
	for _, r := range a.Rules {
		if r.Name == "r1" {
			r1 = r
		}
	}
	if a.GuardString(r1) != "true" {
		t.Errorf("unguarded rule renders %q, want true", a.GuardString(r1))
	}
}

func TestUniqueGuardsDeterministic(t *testing.T) {
	a := toyTA(t)
	g1 := a.UniqueGuards()
	g2 := a.UniqueGuards()
	if len(g1) != len(g2) {
		t.Fatalf("lengths differ")
	}
	for i := range g1 {
		if g1[i].String(a.Table) != g2[i].String(a.Table) {
			t.Errorf("order not deterministic at %d", i)
		}
	}
}

func TestValidateRejectsEffectfulSelfLoopAndGuardedSwitch(t *testing.T) {
	b := NewBuilder("badloops")
	x := b.Shared("x")
	locA := b.Loc("A", Initial())
	b.Rule("bad", locA, locA, Inc(x))
	if _, err := b.Build(); err == nil {
		t.Error("self-loop with update should be rejected")
	}

	b2 := NewBuilder("badswitch")
	y := b2.Shared("y")
	locP := b2.Loc("P", Initial())
	locQ := b2.Loc("Q")
	b2.Rule("r", locP, locQ, Inc(y))
	b2.Rule("rs", locQ, locP, RoundSwitch(), Guarded(b2.GeThreshold(y, b2.Lin(1))))
	if _, err := b2.Build(); err == nil {
		t.Error("guarded round-switch rule should be rejected")
	}
}

func TestValidateRejectsZeroCorrectCount(t *testing.T) {
	b := NewBuilder("zerocount")
	b.Loc("A", Initial())
	a := b.ta
	a.CorrectCount = expr.Lin{}
	if err := a.Validate(); err == nil {
		t.Error("constant-zero correct count should be rejected")
	}
}
