package ta

import (
	"testing"

	"repro/internal/expr"
)

// TestEliminationReproducesFig2Guards: eliminating the receive variables of
// the Fig. 1 pseudocode thresholds (t+1 and 2t+1 received messages) yields
// exactly the Fig. 2 guards b_v >= t+1-f and b_v >= 2t+1-f.
func TestEliminationReproducesFig2Guards(t *testing.T) {
	b := NewBuilder("qe")
	b0 := b.Shared("b0")

	// θ = t + 1
	theta1 := b.Lin(1, LinTerm{Coeff: 1, Sym: b.T()})
	g1, err := b.EliminateReceive(b0, theta1)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: b0 - (t+1) + f >= 0
	want1 := b.GeThreshold(b0, b.Lin(1, LinTerm{Coeff: 1, Sym: b.T()}, LinTerm{Coeff: -1, Sym: b.F()}))
	if g1.String(b.ta.Table) != want1.String(b.ta.Table) {
		t.Errorf("t+1 guard: %s, want %s", g1.String(b.ta.Table), want1.String(b.ta.Table))
	}

	// θ = 2t + 1
	theta2 := b.Lin(1, LinTerm{Coeff: 2, Sym: b.T()})
	g2, err := b.EliminateReceive(b0, theta2)
	if err != nil {
		t.Fatal(err)
	}
	want2 := b.GeThreshold(b0, b.Lin(1, LinTerm{Coeff: 2, Sym: b.T()}, LinTerm{Coeff: -1, Sym: b.F()}))
	if g2.String(b.ta.Table) != want2.String(b.ta.Table) {
		t.Errorf("2t+1 guard: %s, want %s", g2.String(b.ta.Table), want2.String(b.ta.Table))
	}
}

// TestExistsBetweenSemantics: the eliminated formula is satisfied exactly
// when the interval contains an integer.
func TestExistsBetweenSemantics(t *testing.T) {
	tab := expr.NewTable()
	lo := tab.Intern("lo")
	hi := tab.Intern("hi")
	c, err := ExistsBetween(expr.Var(lo), expr.Var(hi))
	if err != nil {
		t.Fatal(err)
	}
	for l := int64(0); l <= 4; l++ {
		for h := int64(0); h <= 4; h++ {
			vals := map[expr.Sym]int64{lo: l, hi: h}
			got, err := c.Holds(func(s expr.Sym) int64 { return vals[s] })
			if err != nil {
				t.Fatal(err)
			}
			want := l <= h
			if got != want {
				t.Errorf("lo=%d hi=%d: eliminated=%v, want %v", l, h, got, want)
			}
		}
	}
}

// TestEliminateReceiveRejectsDegenerate: a guard whose eliminated form does
// not depend positively on the send variable is a modeling error.
func TestEliminateReceiveRejectsDegenerate(t *testing.T) {
	b := NewBuilder("qe-bad")
	x := b.Shared("x")
	// θ containing -x would cancel the send variable.
	theta := expr.Term(x, 1)
	if _, err := b.EliminateReceive(x, theta); err == nil {
		t.Error("expected error for guard not rising in the send variable")
	}
}
