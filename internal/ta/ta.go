// Package ta defines threshold automata (TA), the modeling formalism of the
// paper: finite automata whose nodes are local states ("locations") of a
// process, whose edges ("rules") are guarded by linear threshold conditions
// over shared message counters and parameters (n, t, f), and whose semantics
// is the counter system of internal/counter.
//
// The package covers one-round and multi-round automata (round-switch rules),
// structural validation (guards must be rising, the rule graph must be a DAG
// modulo self-loops), and utilities used by the schema-based checker.
package ta

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// LocID identifies a location within a TA.
type LocID int

// Location is a local state of a process.
type Location struct {
	Name    string
	Initial bool
	// Broadcast and Delivered record the Table 1 semantics of the location
	// for the bv-broadcast automaton: which binary values a process in this
	// location has broadcast resp. delivered. Nil when not applicable.
	Broadcast []int
	Delivered []int
}

// Rule is a guarded edge of a TA. A process at From may move to To when every
// guard conjunct holds, incrementing shared variables per Update.
type Rule struct {
	Name string
	From LocID
	To   LocID
	// Guard is a conjunction of rising threshold constraints over shared
	// variables and parameters (empty = always enabled).
	Guard []expr.Constraint
	// Update maps shared variables to nonnegative increments.
	Update map[expr.Sym]int64
	// RoundSwitch marks the dotted edges connecting the final locations of a
	// round to the initial locations of the next round.
	RoundSwitch bool
}

// SelfLoop reports whether the rule loops on its source location.
func (r Rule) SelfLoop() bool { return r.From == r.To }

// TA is a threshold automaton.
type TA struct {
	Name      string
	Locations []Location
	Rules     []Rule

	// Table interns parameter and shared-variable symbols. Guard expressions
	// refer to these symbols.
	Table *expr.Table
	// Params are the parameter symbols, conventionally n, t, f.
	Params []expr.Sym
	// Shared are the shared-variable symbols updated by rules.
	Shared []expr.Sym
	// Resilience is the conjunction restricting parameters (e.g. n > 3t,
	// t >= f >= 0).
	Resilience []expr.Constraint
	// CorrectCount is the number of processes modeled by the automaton as an
	// expression over parameters, conventionally n - f (only correct
	// processes move through the TA; Byzantine behaviour is folded into the
	// guards).
	CorrectCount expr.Lin
}

// Builder constructs a TA incrementally with a fluent, misuse-resistant API.
type Builder struct {
	ta  *TA
	err error
}

// NewBuilder returns a builder for a TA with the conventional parameters
// n, t, f and the standard resilience condition n > 3t ∧ t >= f >= 0 and
// correct-process count n - f. Both can be overridden before Build.
func NewBuilder(name string) *Builder {
	tab := expr.NewTable()
	a := &TA{
		Name:  name,
		Table: tab,
	}
	b := &Builder{ta: a}
	n := tab.Intern("n")
	t := tab.Intern("t")
	f := tab.Intern("f")
	a.Params = []expr.Sym{n, t, f}

	// n - 3t - 1 >= 0, t - f >= 0, f >= 0, t >= 1 (at least one tolerated
	// fault keeps the thresholds meaningful).
	a.Resilience = []expr.Constraint{
		gez(b, sub(b, expr.Var(n), add(b, expr.Term(t, 3), expr.NewLin(1)))),
		gez(b, sub(b, expr.Var(t), expr.Var(f))),
		gez(b, expr.Var(f)),
		gez(b, sub(b, expr.Var(t), expr.NewLin(1))),
	}
	cc := expr.Var(n)
	if e := cc.AddTerm(f, -1); e != nil {
		b.err = e
	}
	a.CorrectCount = cc
	return b
}

func gez(b *Builder, l expr.Lin) expr.Constraint { return expr.GEZero(l) }

func add(b *Builder, x, y expr.Lin) expr.Lin {
	out := x.Clone()
	if err := out.Add(y); err != nil && b.err == nil {
		b.err = err
	}
	return out
}

func sub(b *Builder, x, y expr.Lin) expr.Lin {
	out := x.Clone()
	if err := out.Sub(y); err != nil && b.err == nil {
		b.err = err
	}
	return out
}

// N, T, F return the conventional parameter symbols.
func (b *Builder) N() expr.Sym { return b.ta.Params[0] }

// T returns the fault-bound parameter symbol.
func (b *Builder) T() expr.Sym { return b.ta.Params[1] }

// F returns the actual-fault-count parameter symbol.
func (b *Builder) F() expr.Sym { return b.ta.Params[2] }

// Shared interns a shared variable and registers it with the TA.
func (b *Builder) Shared(name string) expr.Sym {
	s := b.ta.Table.Intern(name)
	for _, existing := range b.ta.Shared {
		if existing == s {
			return s
		}
	}
	b.ta.Shared = append(b.ta.Shared, s)
	return s
}

// LocOpt configures a location.
type LocOpt func(*Location)

// Initial marks the location as a start location.
func Initial() LocOpt { return func(l *Location) { l.Initial = true } }

// Semantics records the Table 1 broadcast/delivered metadata.
func Semantics(broadcast, delivered []int) LocOpt {
	return func(l *Location) {
		l.Broadcast = broadcast
		l.Delivered = delivered
	}
}

// Loc adds a location and returns its id.
func (b *Builder) Loc(name string, opts ...LocOpt) LocID {
	l := Location{Name: name}
	for _, o := range opts {
		o(&l)
	}
	b.ta.Locations = append(b.ta.Locations, l)
	return LocID(len(b.ta.Locations) - 1)
}

// GeThreshold builds the rising guard  shared >= rhs  where rhs is a linear
// expression over parameters (e.g. 2t+1-f).
func (b *Builder) GeThreshold(shared expr.Sym, rhs expr.Lin) expr.Constraint {
	l := expr.Var(shared)
	if err := l.Sub(rhs); err != nil && b.err == nil {
		b.err = err
	}
	return expr.GEZero(l)
}

// SumGeThreshold builds the rising guard  Σ shared_i >= rhs.
func (b *Builder) SumGeThreshold(shared []expr.Sym, rhs expr.Lin) expr.Constraint {
	l := expr.Lin{}
	for _, s := range shared {
		if err := l.AddTerm(s, 1); err != nil && b.err == nil {
			b.err = err
		}
	}
	if err := l.Sub(rhs); err != nil && b.err == nil {
		b.err = err
	}
	return expr.GEZero(l)
}

// Lin builds the expression  Σ coeff_i·param_i + c  for guard thresholds.
func (b *Builder) Lin(c int64, terms ...LinTerm) expr.Lin {
	l := expr.NewLin(c)
	for _, t := range terms {
		if err := l.AddTerm(t.Sym, t.Coeff); err != nil && b.err == nil {
			b.err = err
		}
	}
	return l
}

// LinTerm is a coefficient-symbol pair for Builder.Lin.
type LinTerm struct {
	Coeff int64
	Sym   expr.Sym
}

// RuleOpt configures a rule.
type RuleOpt func(*Rule)

// Guarded attaches guard conjuncts.
func Guarded(cs ...expr.Constraint) RuleOpt {
	return func(r *Rule) { r.Guard = append(r.Guard, cs...) }
}

// Inc adds a +1 increment of a shared variable.
func Inc(s expr.Sym) RuleOpt {
	return func(r *Rule) {
		if r.Update == nil {
			r.Update = make(map[expr.Sym]int64)
		}
		r.Update[s]++
	}
}

// RoundSwitch marks the rule as a round-switch (dotted) edge.
func RoundSwitch() RuleOpt { return func(r *Rule) { r.RoundSwitch = true } }

// Rule adds a rule and returns its index.
func (b *Builder) Rule(name string, from, to LocID, opts ...RuleOpt) int {
	r := Rule{Name: name, From: from, To: to}
	for _, o := range opts {
		o(&r)
	}
	b.ta.Rules = append(b.ta.Rules, r)
	return len(b.ta.Rules) - 1
}

// SelfLoop adds an unguarded self-loop on loc (the paper adds one to every
// location a process may stay in forever; they model per-process asynchrony).
func (b *Builder) SelfLoop(loc LocID) int {
	return b.Rule("self_"+b.ta.Locations[loc].Name, loc, loc)
}

// Build validates and returns the automaton.
func (b *Builder) Build() (*TA, error) {
	if b.err != nil {
		return nil, fmt.Errorf("ta: building %s: %w", b.ta.Name, b.err)
	}
	if err := b.ta.Validate(); err != nil {
		return nil, err
	}
	return b.ta, nil
}

// MustBuild is Build for static model definitions whose validity is covered
// by tests; it panics on error.
func (b *Builder) MustBuild() *TA {
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	return a
}

// Validate checks the structural well-formedness invariants the checker
// relies on: valid endpoints, rising guards, nonnegative updates, and
// DAG-ness modulo self-loops and round-switch rules.
func (a *TA) Validate() error {
	if len(a.Locations) == 0 {
		return fmt.Errorf("ta %s: no locations", a.Name)
	}
	if len(a.InitialLocs()) == 0 {
		return fmt.Errorf("ta %s: no initial locations", a.Name)
	}
	names := make(map[string]bool, len(a.Locations))
	for _, l := range a.Locations {
		if names[l.Name] {
			return fmt.Errorf("ta %s: duplicate location name %q", a.Name, l.Name)
		}
		names[l.Name] = true
	}
	// The checkers rely on the correct-process count being meaningful: an
	// unset (constant zero) count would make every property vacuously true
	// over zero processes — a trap for hand-written .ta files.
	if a.CorrectCount.IsConst() && a.CorrectCount.Const == 0 {
		return fmt.Errorf("ta %s: correct-process count is not set (e.g. n - f)", a.Name)
	}
	isShared := make(map[expr.Sym]bool, len(a.Shared))
	for _, s := range a.Shared {
		isShared[s] = true
	}
	isParam := make(map[expr.Sym]bool, len(a.Params))
	for _, p := range a.Params {
		isParam[p] = true
	}
	for i, r := range a.Rules {
		if r.From < 0 || int(r.From) >= len(a.Locations) || r.To < 0 || int(r.To) >= len(a.Locations) {
			return fmt.Errorf("ta %s: rule %d (%s) has out-of-range endpoint", a.Name, i, r.Name)
		}
		// Self-loops model per-process stuttering only: both checkers skip
		// them, so a self-loop with effects would be silently unexplored —
		// an unsound blind spot. Reject at validation instead.
		if r.SelfLoop() && (len(r.Guard) > 0 || len(r.Update) > 0) {
			return fmt.Errorf("ta %s: self-loop %s must have no guard and no updates", a.Name, r.Name)
		}
		// Round-switch rules must be communication-closed (Appendix A):
		// OneRound drops them wholesale, so a guard or update on them would
		// silently disappear from the checked system.
		if r.RoundSwitch && (len(r.Guard) > 0 || len(r.Update) > 0) {
			return fmt.Errorf("ta %s: round-switch rule %s must have no guard and no updates", a.Name, r.Name)
		}
		for s, d := range r.Update {
			if !isShared[s] {
				return fmt.Errorf("ta %s: rule %s updates non-shared symbol %s", a.Name, r.Name, a.Table.Name(s))
			}
			if d < 0 {
				return fmt.Errorf("ta %s: rule %s decrements %s; only rising systems are supported", a.Name, r.Name, a.Table.Name(s))
			}
		}
		for _, g := range r.Guard {
			if g.Op != expr.GE {
				return fmt.Errorf("ta %s: rule %s guard must be a >= constraint", a.Name, r.Name)
			}
			for s, c := range g.L.Coeffs {
				switch {
				case isShared[s]:
					if c < 0 {
						return fmt.Errorf("ta %s: rule %s guard is not rising in %s", a.Name, r.Name, a.Table.Name(s))
					}
				case isParam[s]:
					// any coefficient allowed on parameters
				default:
					return fmt.Errorf("ta %s: rule %s guard mentions unknown symbol %s", a.Name, r.Name, a.Table.Name(s))
				}
			}
		}
	}
	if err := a.checkDAG(); err != nil {
		return err
	}
	return nil
}

// checkDAG verifies that the non-self-loop, non-round-switch rule graph is
// acyclic.
func (a *TA) checkDAG() error {
	_, err := a.TopoOrder()
	return err
}

// TopoOrder returns the locations in a topological order of the progress
// edges (self-loops and round-switch rules excluded), or an error if the
// graph has a cycle.
func (a *TA) TopoOrder() ([]LocID, error) {
	n := len(a.Locations)
	adj := make([][]int, n)
	indeg := make([]int, n)
	for _, r := range a.Rules {
		if r.SelfLoop() || r.RoundSwitch {
			continue
		}
		adj[r.From] = append(adj[r.From], int(r.To))
		indeg[r.To]++
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []LocID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, LocID(v))
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("ta %s: progress graph has a cycle", a.Name)
	}
	return order, nil
}

// Depth returns, for every location, its longest-path depth from the sources
// of the progress DAG. Used to order rule firings topologically.
func (a *TA) Depth() ([]int, error) {
	order, err := a.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(a.Locations))
	for _, v := range order {
		for _, r := range a.Rules {
			if r.SelfLoop() || r.RoundSwitch || r.From != v {
				continue
			}
			if depth[r.To] < depth[v]+1 {
				depth[r.To] = depth[v] + 1
			}
		}
	}
	return depth, nil
}

// InitialLocs returns the ids of initial locations.
func (a *TA) InitialLocs() []LocID {
	var out []LocID
	for i, l := range a.Locations {
		if l.Initial {
			out = append(out, LocID(i))
		}
	}
	return out
}

// FinalLocs returns locations with no outgoing progress edges.
func (a *TA) FinalLocs() []LocID {
	hasOut := make([]bool, len(a.Locations))
	for _, r := range a.Rules {
		if !r.SelfLoop() && !r.RoundSwitch {
			hasOut[r.From] = true
		}
	}
	var out []LocID
	for i := range a.Locations {
		if !hasOut[i] {
			out = append(out, LocID(i))
		}
	}
	return out
}

// LocByName returns the id of the named location.
func (a *TA) LocByName(name string) (LocID, error) {
	for i, l := range a.Locations {
		if l.Name == name {
			return LocID(i), nil
		}
	}
	return 0, fmt.Errorf("ta %s: no location named %q", a.Name, name)
}

// MustLoc is LocByName for tests and static tables; it panics on error.
func (a *TA) MustLoc(name string) LocID {
	id, err := a.LocByName(name)
	if err != nil {
		panic(err)
	}
	return id
}

// SharedByName returns the symbol of the named shared variable.
func (a *TA) SharedByName(name string) (expr.Sym, error) {
	s := a.Table.Lookup(name)
	if s == expr.NoSym {
		return 0, fmt.Errorf("ta %s: no shared variable named %q", a.Name, name)
	}
	for _, sh := range a.Shared {
		if sh == s {
			return s, nil
		}
	}
	return 0, fmt.Errorf("ta %s: symbol %q is not a shared variable", a.Name, name)
}

// UniqueGuards returns the deduplicated nontrivial guard conjuncts appearing
// on the automaton's rules, in a deterministic order. This is the "unique
// guards" count of Table 2.
func (a *TA) UniqueGuards() []expr.Constraint {
	seen := make(map[string]expr.Constraint)
	for _, r := range a.Rules {
		for _, g := range r.Guard {
			seen[g.String(a.Table)] = g
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]expr.Constraint, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// OneRound returns a copy of the automaton with round-switch rules removed
// and with the initial-location set enlarged by the targets of round-switch
// rules (per the Appendix A reduction, checking a one-round system must admit
// every configuration a later round can start from).
func (a *TA) OneRound() *TA {
	out := &TA{
		Name:         a.Name + "-oneround",
		Locations:    append([]Location(nil), a.Locations...),
		Table:        a.Table,
		Params:       a.Params,
		Shared:       a.Shared,
		Resilience:   a.Resilience,
		CorrectCount: a.CorrectCount,
	}
	for _, r := range a.Rules {
		if r.RoundSwitch {
			out.Locations[r.To].Initial = true
			continue
		}
		out.Rules = append(out.Rules, r)
	}
	return out
}

// WithResilience returns a shallow copy of the automaton with the resilience
// condition replaced (used to search for counterexamples outside n > 3t).
func (a *TA) WithResilience(rc []expr.Constraint) *TA {
	out := *a
	out.Resilience = rc
	return &out
}

// NumSelfLoops counts self-loop rules.
func (a *TA) NumSelfLoops() int {
	n := 0
	for _, r := range a.Rules {
		if r.SelfLoop() {
			n++
		}
	}
	return n
}

// Size describes the automaton in the terms Table 2 uses.
type Size struct {
	UniqueGuards int
	Locations    int
	Rules        int
}

// Size returns the Table 2 size of the automaton. Rules counts every rule
// including self-loops and round-switch rules, matching the paper's counts
// (e.g. 19 for the bv-broadcast = 12 progress rules + 7 self-loops).
func (a *TA) Size() Size {
	return Size{
		UniqueGuards: len(a.UniqueGuards()),
		Locations:    len(a.Locations),
		Rules:        len(a.Rules),
	}
}

// String renders a compact description.
func (a *TA) String() string {
	s := a.Size()
	return fmt.Sprintf("%s: %d locations, %d rules, %d unique guards", a.Name, s.Locations, s.Rules, s.UniqueGuards)
}

// GuardString renders a rule's guard for diagnostics.
func (a *TA) GuardString(r Rule) string {
	if len(r.Guard) == 0 {
		return "true"
	}
	parts := make([]string, len(r.Guard))
	for i, g := range r.Guard {
		parts[i] = g.String(a.Table)
	}
	return strings.Join(parts, " && ")
}
