package ta

import (
	"fmt"

	"repro/internal/expr"
)

// This file implements the receive-variable elimination of Section 3.1:
// pseudocode guards count *received* messages, but the threshold automaton
// must be guarded over the *shared send* variables only. Because the
// network is reliable and up to f of the received messages may come from
// Byzantine senders, a receive count recv for a message type with send
// counter `sent` satisfies
//
//	0 <= recv <= sent + f,
//
// and every value in that interval is realizable at some point of the
// execution. The pseudocode guard "received >= θ" therefore becomes the
// Presburger-eliminated
//
//	∃recv: recv >= θ ∧ recv <= sent + f   ⟺   sent >= θ - f,
//
// which is how Fig. 1's "from t+1 (resp. 2t+1) distinct processes" turns
// into Fig. 2's guards b_v >= t+1-f (resp. 2t+1-f). (The paper points to
// quantifier elimination for Presburger arithmetic and its automation with
// Z3 by Stoilkovska et al.; for the one-sided intervals used here the
// eliminated form is closed-form.)

// ExistsBetween eliminates ∃x: lower <= x <= upper over the integers:
// the interval is nonempty iff upper - lower >= 0.
func ExistsBetween(lower, upper expr.Lin) (expr.Constraint, error) {
	diff := upper.Clone()
	if err := diff.Sub(lower); err != nil {
		return expr.Constraint{}, err
	}
	return expr.GEZero(diff), nil
}

// EliminateReceive turns the pseudocode guard "received >= threshold
// messages counted by the shared send variable sent, up to f of them
// Byzantine" into the send-side guard `sent >= threshold - f`.
func (b *Builder) EliminateReceive(sent expr.Sym, threshold expr.Lin) (expr.Constraint, error) {
	upper := expr.Var(sent)
	if err := upper.AddTerm(b.F(), 1); err != nil {
		return expr.Constraint{}, err
	}
	c, err := ExistsBetween(threshold, upper)
	if err != nil {
		return expr.Constraint{}, err
	}
	// Sanity: the result must be rising in the send variable.
	if c.L.Coeff(sent) <= 0 {
		return expr.Constraint{}, fmt.Errorf("ta: eliminated guard is not rising in %s", b.ta.Table.Name(sent))
	}
	return c, nil
}
