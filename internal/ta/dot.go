package ta

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the automaton in Graphviz DOT format, reproducing the
// visual conventions of the paper's figures: initial locations are drawn with
// a double border, round-switch rules are dotted, self-loops are omitted for
// readability (the paper draws them only implicitly).
func (a *TA) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", a.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=11];\n")
	for i, l := range a.Locations {
		shape := "circle"
		if l.Initial {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  L%d [label=%q, shape=%s];\n", i, l.Name, shape)
	}
	for _, r := range a.Rules {
		if r.SelfLoop() {
			continue
		}
		label := r.Name
		if g := a.GuardString(r); g != "true" {
			label += ": " + g
		}
		if len(r.Update) > 0 {
			for s, d := range r.Update {
				if d == 1 {
					label += fmt.Sprintf(" / %s++", a.Table.Name(s))
				} else {
					label += fmt.Sprintf(" / %s+=%d", a.Table.Name(s), d)
				}
			}
		}
		style := ""
		if r.RoundSwitch {
			style = ", style=dotted"
		}
		fmt.Fprintf(&b, "  L%d -> L%d [label=%q, fontsize=9%s];\n", r.From, r.To, label, style)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
