package ta

import "repro/internal/expr"

// Justice is a fairness requirement of the form
//
//	□◇ Trigger  ⇒  ◇□ (location Loc is empty)
//
// restricted, as in the paper, to rising triggers: once Trigger holds it
// holds forever, so on every fair execution Loc must eventually drain.
//
// The reliable-communication assumption of Section 2 is the special case
// where Trigger is a rule's guard and Loc its source ("if the guard of a
// rule is true infinitely often, then the origin location of that rule will
// eventually be empty"). The gadget preconditions of Appendix F
// (BV-Termination, BV-Obligation, BV-Uniformity baked into the simplified
// automaton) are Justice values with custom trigger thresholds.
type Justice struct {
	Name    string
	Trigger []expr.Constraint // conjunction; empty = always triggered
	Loc     LocID
}

// DefaultJustice derives the reliable-communication justice requirements
// from the automaton's progress rules: each non-self-loop rule contributes
// "guard true forever ⇒ source eventually empty".
func (a *TA) DefaultJustice() []Justice {
	var out []Justice
	for _, r := range a.Rules {
		if r.SelfLoop() || r.RoundSwitch {
			continue
		}
		out = append(out, Justice{Name: "rc_" + r.Name, Trigger: r.Guard, Loc: r.From})
	}
	return out
}
