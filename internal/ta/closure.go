package ta

import (
	"fmt"
	"sort"
	"strings"
)

// LocSet is a set of locations.
type LocSet map[LocID]bool

// NewLocSet builds a set from ids.
func NewLocSet(ids ...LocID) LocSet {
	s := make(LocSet, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// LocSetByName builds a set from location names.
func (a *TA) LocSetByName(names ...string) (LocSet, error) {
	s := make(LocSet, len(names))
	for _, n := range names {
		id, err := a.LocByName(n)
		if err != nil {
			return nil, err
		}
		s[id] = true
	}
	return s, nil
}

// String renders the set with location names in deterministic order.
func (s LocSet) String(a *TA) string {
	names := make([]string, 0, len(s))
	for id := range s {
		names = append(names, a.Locations[id].Name)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

// PredClosed reports whether every progress edge entering the set originates
// inside the set. For a predecessor-closed set, "the set is empty" is a
// monotonically stable predicate: once no process is inside, no process can
// ever enter. Goal atoms of liveness specifications must satisfy this.
func (a *TA) PredClosed(s LocSet) error {
	for _, r := range a.Rules {
		if r.SelfLoop() || r.RoundSwitch {
			continue
		}
		if s[r.To] && !s[r.From] {
			return fmt.Errorf("ta %s: set %s is not predecessor-closed: rule %s enters from %s",
				a.Name, s.String(a), r.Name, a.Locations[r.From].Name)
		}
	}
	return nil
}

// SuccClosed reports whether every progress edge leaving the set lands inside
// the set. For a successor-closed set, "some process is in the set" is a
// monotonically stable predicate: a process inside can never escape.
// ◇-witness atoms of specifications must satisfy this.
func (a *TA) SuccClosed(s LocSet) error {
	for _, r := range a.Rules {
		if r.SelfLoop() || r.RoundSwitch {
			continue
		}
		if s[r.From] && !s[r.To] {
			return fmt.Errorf("ta %s: set %s is not successor-closed: rule %s escapes to %s",
				a.Name, s.String(a), r.Name, a.Locations[r.To].Name)
		}
	}
	return nil
}

// NoIncoming reports whether the location has no incoming progress edges
// (so "empty initially" implies "empty forever").
func (a *TA) NoIncoming(loc LocID) bool {
	for _, r := range a.Rules {
		if r.SelfLoop() || r.RoundSwitch {
			continue
		}
		if r.To == loc {
			return false
		}
	}
	return true
}
