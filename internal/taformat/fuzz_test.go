package taformat

import (
	"testing"

	"repro/internal/models"
)

// FuzzParse checks that the automaton parser never panics and that accepted
// automata survive a render/parse round trip.
func FuzzParse(f *testing.F) {
	for _, mk := range []func() string{
		func() string { s, _ := Format(models.BVBroadcast()); return s },
		func() string { s, _ := Format(models.SimplifiedConsensus()); return s },
	} {
		f.Add(mk())
	}
	f.Add("automaton x { parameters n,t,f; correct n - f; initial A; }")
	f.Add("automaton x { }")
	f.Add("{}{}{}")
	f.Fuzz(func(t *testing.T, src string) {
		a, err := Parse(src)
		if err != nil {
			return
		}
		text, err := Format(a)
		if err != nil {
			t.Fatalf("accepted automaton fails to render: %v", err)
		}
		b, err := Parse(text)
		if err != nil {
			t.Fatalf("rendering does not reparse: %v\n%s", err, text)
		}
		if err := equivalent(a, b); err != nil {
			t.Fatalf("round trip not equivalent: %v", err)
		}
	})
}
