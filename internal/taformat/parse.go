package taformat

import (
	"fmt"
	"strconv"

	"repro/internal/expr"
	lexer "repro/internal/lex"
	"repro/internal/ta"
)

// Parse reads an automaton description and validates the result.
func Parse(src string) (*ta.TA, error) {
	toks, err := lexer.Tokens(src, lexer.Config{
		MultiOps:  []string{"->", "~>", ">=", "<=", "==", "+="},
		SingleOps: "{}(),;*+-:",
	})
	if err != nil {
		return nil, fmt.Errorf("taformat: %w", err)
	}
	p := &parser{toks: toks, a: &ta.TA{Table: expr.NewTable()}, locs: map[string]ta.LocID{}}
	if err := p.parseAutomaton(); err != nil {
		return nil, err
	}
	if err := p.a.Validate(); err != nil {
		return nil, err
	}
	return p.a, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
	a    *ta.TA
	locs map[string]ta.LocID
}

func (p *parser) peek() lexer.Token { return p.toks[p.pos] }

// next consumes a token; the trailing EOF token is sticky so that error
// paths deep in expression parsing cannot run past the token slice.
func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("taformat: line %d: %s", p.peek().Line, fmt.Sprintf(format, args...))
}

func (p *parser) accept(text string) bool {
	t := p.peek()
	if t.Kind == lexer.Op && t.Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.peek().Text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != lexer.Ident {
		return "", p.errf("expected identifier, found %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

// identList parses "a, b, c".
func (p *parser) identList() ([]string, error) {
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.accept(",") {
			return out, nil
		}
	}
}

func (p *parser) parseAutomaton() error {
	name, err := p.ident()
	if err != nil || name != "automaton" {
		return p.errf("expected 'automaton'")
	}
	p.a.Name, err = p.ident()
	if err != nil {
		return err
	}
	// Automaton names may be hyphenated (e.g. "bv-broadcast").
	for p.accept("-") {
		part, err := p.ident()
		if err != nil {
			return err
		}
		p.a.Name += "-" + part
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	for {
		if p.accept("}") {
			if p.peek().Kind != lexer.EOF {
				return p.errf("trailing input after closing brace")
			}
			return nil
		}
		kw, err := p.ident()
		if err != nil {
			return err
		}
		switch kw {
		case "parameters":
			names, err := p.identList()
			if err != nil {
				return err
			}
			for _, n := range names {
				p.a.Params = append(p.a.Params, p.a.Table.Intern(n))
			}
		case "shared":
			names, err := p.identList()
			if err != nil {
				return err
			}
			for _, n := range names {
				p.a.Shared = append(p.a.Shared, p.a.Table.Intern(n))
			}
		case "resilience":
			for {
				c, err := p.parseConstraint()
				if err != nil {
					return err
				}
				p.a.Resilience = append(p.a.Resilience, c)
				if !p.accept(",") {
					break
				}
			}
		case "correct":
			l, err := p.parseLin()
			if err != nil {
				return err
			}
			p.a.CorrectCount = l
		case "initial", "locations":
			names, err := p.identList()
			if err != nil {
				return err
			}
			for _, n := range names {
				if _, dup := p.locs[n]; dup {
					return p.errf("duplicate location %q", n)
				}
				p.locs[n] = ta.LocID(len(p.a.Locations))
				p.a.Locations = append(p.a.Locations, ta.Location{Name: n, Initial: kw == "initial"})
			}
		case "rule":
			if err := p.parseRule(false); err != nil {
				return err
			}
		case "switch":
			if err := p.parseRule(true); err != nil {
				return err
			}
		case "self":
			loc, err := p.location()
			if err != nil {
				return err
			}
			p.a.Rules = append(p.a.Rules, ta.Rule{
				Name: "self_" + p.a.Locations[loc].Name, From: loc, To: loc,
			})
		default:
			return p.errf("unknown statement %q", kw)
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
}

func (p *parser) location() (ta.LocID, error) {
	name, err := p.ident()
	if err != nil {
		return 0, err
	}
	id, ok := p.locs[name]
	if !ok {
		return 0, p.errf("unknown location %q (declare with initial/locations first)", name)
	}
	return id, nil
}

func (p *parser) parseRule(roundSwitch bool) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	from, err := p.location()
	if err != nil {
		return err
	}
	arrow := "->"
	if roundSwitch {
		arrow = "~>"
	}
	if err := p.expect(arrow); err != nil {
		return err
	}
	to, err := p.location()
	if err != nil {
		return err
	}
	rule := ta.Rule{Name: name, From: from, To: to, RoundSwitch: roundSwitch}

	for p.peek().Kind == lexer.Ident {
		switch p.peek().Text {
		case "when":
			if roundSwitch {
				return p.errf("round-switch rules cannot be guarded")
			}
			p.pos++
			for {
				c, err := p.parseConstraint()
				if err != nil {
					return err
				}
				rule.Guard = append(rule.Guard, c)
				if !p.accept(",") {
					break
				}
			}
		case "do":
			if roundSwitch {
				return p.errf("round-switch rules cannot have updates")
			}
			p.pos++
			rule.Update = map[expr.Sym]int64{}
			for {
				v, err := p.ident()
				if err != nil {
					return err
				}
				sym := p.a.Table.Lookup(v)
				if sym == expr.NoSym || !isIn(p.a.Shared, sym) {
					return p.errf("update of undeclared shared variable %q", v)
				}
				if err := p.expect("+="); err != nil {
					return err
				}
				num := p.next()
				if num.Kind != lexer.Number {
					return p.errf("expected increment amount")
				}
				k, err := strconv.ParseInt(num.Text, 10, 64)
				if err != nil {
					return p.errf("%v", err)
				}
				rule.Update[sym] += k
				if !p.accept(",") {
					break
				}
			}
		default:
			return p.errf("unexpected %q in rule", p.peek().Text)
		}
	}
	p.a.Rules = append(p.a.Rules, rule)
	return nil
}

func isIn(syms []expr.Sym, s expr.Sym) bool {
	for _, x := range syms {
		if x == s {
			return true
		}
	}
	return false
}

// parseConstraint parses `lin (>=|<=|==) lin` into canonical L-op-0 form.
func (p *parser) parseConstraint() (expr.Constraint, error) {
	l, err := p.parseLin()
	if err != nil {
		return expr.Constraint{}, err
	}
	var op string
	switch {
	case p.accept(">="):
		op = ">="
	case p.accept("<="):
		op = "<="
	case p.accept("=="):
		op = "=="
	default:
		return expr.Constraint{}, p.errf("expected >=, <= or ==")
	}
	r, err := p.parseLin()
	if err != nil {
		return expr.Constraint{}, err
	}
	switch op {
	case ">=":
		return expr.Ge(l, r)
	case "<=":
		return expr.Le(l, r)
	default:
		return expr.Eq(l, r)
	}
}

// parseLin parses a linear expression: [-] term { (+|-) term } with terms
// NUMBER, IDENT, NUMBER*IDENT or IDENT*NUMBER. Identifiers are interned
// into the automaton's table (they must be declared parameters or shared
// variables; ta.Validate enforces this for guards).
func (p *parser) parseLin() (expr.Lin, error) {
	out := expr.Lin{}
	sign := int64(1)
	if p.accept("-") {
		sign = -1
	}
	for {
		if err := p.parseTermInto(&out, sign); err != nil {
			return expr.Lin{}, err
		}
		switch {
		case p.accept("+"):
			sign = 1
		case p.accept("-"):
			sign = -1
		default:
			return out, nil
		}
	}
}

func (p *parser) parseTermInto(out *expr.Lin, sign int64) error {
	t := p.next()
	switch t.Kind {
	case lexer.Number:
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return p.errf("%v", err)
		}
		if p.accept("*") {
			id, err := p.ident()
			if err != nil {
				return err
			}
			return out.AddTerm(p.a.Table.Intern(id), sign*v)
		}
		return out.AddConst(sign * v)
	case lexer.Ident:
		sym := p.a.Table.Intern(t.Text)
		if p.accept("*") {
			num := p.next()
			if num.Kind != lexer.Number {
				return p.errf("expected number after *")
			}
			v, err := strconv.ParseInt(num.Text, 10, 64)
			if err != nil {
				return p.errf("%v", err)
			}
			return out.AddTerm(sym, sign*v)
		}
		return out.AddTerm(sym, sign)
	default:
		return p.errf("expected term, found %q", t.Text)
	}
}
