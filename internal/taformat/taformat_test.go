package taformat

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/models"
	"repro/internal/ta"
)

// TestRoundTripModels renders each of the paper's automata and parses the
// text back, requiring full structural equivalence (the Table 1 semantic
// metadata is intentionally not part of the format).
func TestRoundTripModels(t *testing.T) {
	for _, mk := range []func() *ta.TA{
		models.BVBroadcast, models.NaiveConsensus, models.SimplifiedConsensus,
	} {
		orig := mk()
		text, err := Format(orig)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", orig.Name, err, text)
		}
		if err := equivalent(orig, parsed); err != nil {
			t.Errorf("%s: round trip not equivalent: %v\n%s", orig.Name, err, text)
		}
		// Idempotence: rendering the parsed automaton reproduces the text.
		text2, err := Format(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if text != text2 {
			t.Errorf("%s: second render differs:\n--- first\n%s\n--- second\n%s", orig.Name, text, text2)
		}
	}
}

func symNames(a *ta.TA, syms []expr.Sym) string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = a.Table.Name(s)
	}
	return strings.Join(out, ",")
}

// equivalent compares two automata structurally by names and canonical
// renderings.
func equivalent(a, b *ta.TA) error {
	if a.Name != b.Name {
		return fmt.Errorf("name %q vs %q", a.Name, b.Name)
	}
	if len(a.Locations) != len(b.Locations) {
		return fmt.Errorf("location count %d vs %d", len(a.Locations), len(b.Locations))
	}
	bInitial := map[string]bool{}
	seen := map[string]bool{}
	for _, l := range b.Locations {
		bInitial[l.Name] = l.Initial
		seen[l.Name] = true
	}
	for _, l := range a.Locations {
		if !seen[l.Name] {
			return fmt.Errorf("missing location %s", l.Name)
		}
		if bInitial[l.Name] != l.Initial {
			return fmt.Errorf("location %s initial flag differs", l.Name)
		}
	}
	if got, want := symNames(b, b.Params), symNames(a, a.Params); got != want {
		return fmt.Errorf("params %q vs %q", got, want)
	}
	if got, want := symNames(b, b.Shared), symNames(a, a.Shared); got != want {
		return fmt.Errorf("shared %q vs %q", got, want)
	}
	if a.CorrectCount.String(a.Table) != b.CorrectCount.String(b.Table) {
		return fmt.Errorf("correct count %q vs %q",
			a.CorrectCount.String(a.Table), b.CorrectCount.String(b.Table))
	}
	if len(a.Resilience) != len(b.Resilience) {
		return fmt.Errorf("resilience count differs")
	}
	for i := range a.Resilience {
		if a.Resilience[i].String(a.Table) != b.Resilience[i].String(b.Table) {
			return fmt.Errorf("resilience %d: %q vs %q", i,
				a.Resilience[i].String(a.Table), b.Resilience[i].String(b.Table))
		}
	}
	if len(a.Rules) != len(b.Rules) {
		return fmt.Errorf("rule count %d vs %d", len(a.Rules), len(b.Rules))
	}
	for i, ra := range a.Rules {
		rb := b.Rules[i]
		if ra.Name != rb.Name || ra.RoundSwitch != rb.RoundSwitch {
			return fmt.Errorf("rule %d header differs: %s vs %s", i, ra.Name, rb.Name)
		}
		if a.Locations[ra.From].Name != b.Locations[rb.From].Name ||
			a.Locations[ra.To].Name != b.Locations[rb.To].Name {
			return fmt.Errorf("rule %s endpoints differ", ra.Name)
		}
		if a.GuardString(ra) != b.GuardString(rb) {
			return fmt.Errorf("rule %s guard %q vs %q", ra.Name, a.GuardString(ra), b.GuardString(rb))
		}
		if len(ra.Update) != len(rb.Update) {
			return fmt.Errorf("rule %s update count differs", ra.Name)
		}
		for s, d := range ra.Update {
			sb := b.Table.Lookup(a.Table.Name(s))
			if sb == expr.NoSym || rb.Update[sb] != d {
				return fmt.Errorf("rule %s update of %s differs", ra.Name, a.Table.Name(s))
			}
		}
	}
	return nil
}

func TestParseMinimal(t *testing.T) {
	src := `
automaton toy {
  parameters n, t, f;
  resilience n >= 3*t + 1, t >= f, f >= 0, t >= 1;
  correct n - f;
  shared x;
  initial A;
  locations B, C;
  rule r1: A -> B do x += 1;
  rule r2: B -> C when x >= t + 1 - f;
  self C;
  switch rs: C ~> A;
}
`
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "toy" || len(a.Locations) != 3 || len(a.Rules) != 4 {
		t.Errorf("parsed shape: %s", a)
	}
	if got := a.GuardString(a.Rules[1]); got != "-t + f + x - 1 >= 0" {
		t.Errorf("guard = %q", got)
	}
	if !a.Rules[3].RoundSwitch {
		t.Error("switch rule not marked")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing automaton", "foo x {}"},
		{"unknown statement", "automaton a { frobnicate x; }"},
		{"unknown location", "automaton a { parameters n,t,f; correct n - f; initial A; rule r: A -> B; }"},
		{"duplicate location", "automaton a { parameters n,t,f; initial A; locations A; }"},
		{"guarded switch", `automaton a { parameters n,t,f; correct n - f; shared x;
			initial A; locations B; switch s: A ~> B when x >= 1; }`},
		{"update undeclared", `automaton a { parameters n,t,f; correct n - f;
			initial A; locations B; rule r: A -> B do y += 1; }`},
		{"trailing garbage", "automaton a { parameters n,t,f; correct n - f; initial A; } extra"},
		{"missing semicolon", "automaton a { parameters n,t,f }"},
		{"falling guard rejected by validate", `automaton a { parameters n,t,f; correct n - f; shared x;
			initial A; locations B; rule r: A -> B when 1 >= x; }`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestParsedModelVerifies: a parsed automaton is a first-class citizen — it
// validates and exposes the same structure the checker consumes.
func TestParsedModelVerifies(t *testing.T) {
	text, err := Format(models.BVBroadcast())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	size := a.Size()
	if size.Locations != 10 || size.Rules != 19 || size.UniqueGuards != 4 {
		t.Errorf("parsed bv-broadcast size = %+v", size)
	}
}

// TestParseRejectsEffectfulSelfLoop: a self-loop written as a plain rule
// with updates must be rejected by validation (both checkers skip
// self-loops, so effects on them would be silently unexplored).
func TestParseRejectsEffectfulSelfLoop(t *testing.T) {
	src := `automaton a {
  parameters n, t, f;
  resilience n >= 3*t + 1, t >= f, f >= 0, t >= 1;
  correct n - f;
  shared x;
  initial A;
  rule r1: A -> A do x += 1;
}`
	if _, err := Parse(src); err == nil {
		t.Error("effectful self-loop should be rejected")
	}
}

// TestParseRejectsMissingCorrect: omitting the correct clause must fail
// validation instead of verifying everything over zero processes.
func TestParseRejectsMissingCorrect(t *testing.T) {
	src := `automaton a {
  parameters n, t, f;
  resilience n >= 3*t + 1, t >= f, f >= 0, t >= 1;
  shared x;
  initial A;
  locations B;
  rule r1: A -> B do x += 1;
}`
	if _, err := Parse(src); err == nil {
		t.Error("missing correct clause should be rejected")
	}
}
