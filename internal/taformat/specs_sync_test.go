package taformat

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ltl"
	"repro/internal/models"
	"repro/internal/ta"
)

// TestShippedSpecsInSync verifies that the .ta and .ltl files shipped under
// specs/ stay equivalent to the bundled models and property texts (they are
// the user-facing artifacts for the file-based CLI workflow).
func TestShippedSpecsInSync(t *testing.T) {
	cases := []struct {
		file string
		mk   func() *ta.TA
	}{
		{"bvbroadcast.ta", models.BVBroadcast},
		{"naive.ta", models.NaiveConsensus},
		{"simplified.ta", models.SimplifiedConsensus},
		{"strb.ta", models.STReliableBroadcast},
		{"bosco.ta", models.Bosco},
		{"sba.ta", models.SBA},
	}
	for _, c := range cases {
		data, err := os.ReadFile(filepath.Join("..", "..", "specs", c.file))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with `holistic export`)", c.file, err)
		}
		parsed, err := Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		if err := equivalent(c.mk(), parsed); err != nil {
			t.Errorf("%s drifted from the bundled model: %v", c.file, err)
		}
	}
}

func TestShippedLTLInSync(t *testing.T) {
	cases := []struct {
		file    string
		bundled string
	}{
		{"bvbroadcast.ltl", ltl.BVBroadcastSpec},
		{"simplified.ltl", ltl.SimplifiedConsensusSpec},
		{"strb.ltl", ltl.STRBSpec},
	}
	for _, c := range cases {
		data, err := os.ReadFile(filepath.Join("..", "..", "specs", c.file))
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		shipped, err := ltl.ParseFile(string(data))
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		bundled, err := ltl.ParseFile(c.bundled)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(shipped.Names, ",") != strings.Join(bundled.Names, ",") {
			t.Errorf("%s: property names differ: %v vs %v", c.file, shipped.Names, bundled.Names)
			continue
		}
		for _, name := range shipped.Names {
			if shipped.Formulas[name].String() != bundled.Formulas[name].String() {
				t.Errorf("%s: property %s drifted", c.file, name)
			}
		}
	}
}
