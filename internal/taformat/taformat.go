// Package taformat implements a textual description format for threshold
// automata, in the spirit of ByMC's input language: a writer that renders
// any ta.TA and a parser that reads it back, so automata can be stored,
// diffed and fed to the checker from files (`holistic verify -ta file.ta`).
//
// Grammar (keywords lead every statement; // and /* */ comments allowed):
//
//	automaton <name> {
//	  parameters n, t, f;
//	  resilience n >= 3*t + 1, t >= f, f >= 0;
//	  correct n - f;
//	  shared b0, b1;
//	  initial V0, V1;
//	  locations B0, B1, C0;
//	  rule r1: V0 -> B0 do b0 += 1;
//	  rule r3: B0 -> C0 when b0 >= 2*t - f + 1;
//	  self C0;
//	  switch rs1: C0 ~> V0;
//	}
//
// Guards are conjunctions of linear comparisons over shared variables and
// parameters (`when c1, c2`); updates are increments (`do v += 1, w += 2`);
// `self` adds an unguarded self-loop; `switch` declares a round-switch
// (dotted) rule.
package taformat

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/ta"
)

// Write renders the automaton.
func Write(w io.Writer, a *ta.TA) error {
	var b strings.Builder
	fmt.Fprintf(&b, "automaton %s {\n", a.Name)

	names := func(syms []expr.Sym) string {
		out := make([]string, len(syms))
		for i, s := range syms {
			out[i] = a.Table.Name(s)
		}
		return strings.Join(out, ", ")
	}
	fmt.Fprintf(&b, "  parameters %s;\n", names(a.Params))
	if len(a.Resilience) > 0 {
		parts := make([]string, len(a.Resilience))
		for i, c := range a.Resilience {
			parts[i] = renderConstraint(a, c)
		}
		fmt.Fprintf(&b, "  resilience %s;\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "  correct %s;\n", a.CorrectCount.String(a.Table))
	if len(a.Shared) > 0 {
		fmt.Fprintf(&b, "  shared %s;\n", names(a.Shared))
	}

	var initial, interior []string
	for _, l := range a.Locations {
		if l.Initial {
			initial = append(initial, l.Name)
		} else {
			interior = append(interior, l.Name)
		}
	}
	if len(initial) > 0 {
		fmt.Fprintf(&b, "  initial %s;\n", strings.Join(initial, ", "))
	}
	if len(interior) > 0 {
		fmt.Fprintf(&b, "  locations %s;\n", strings.Join(interior, ", "))
	}
	b.WriteString("\n")

	for _, r := range a.Rules {
		switch {
		case r.SelfLoop() && len(r.Guard) == 0 && len(r.Update) == 0:
			fmt.Fprintf(&b, "  self %s;\n", a.Locations[r.From].Name)
		case r.RoundSwitch:
			fmt.Fprintf(&b, "  switch %s: %s ~> %s;\n",
				r.Name, a.Locations[r.From].Name, a.Locations[r.To].Name)
		default:
			fmt.Fprintf(&b, "  rule %s: %s -> %s", r.Name,
				a.Locations[r.From].Name, a.Locations[r.To].Name)
			if len(r.Guard) > 0 {
				parts := make([]string, len(r.Guard))
				for i, g := range r.Guard {
					parts[i] = renderConstraint(a, g)
				}
				fmt.Fprintf(&b, " when %s", strings.Join(parts, ", "))
			}
			if len(r.Update) > 0 {
				var ups []string
				var syms []expr.Sym
				for s := range r.Update {
					syms = append(syms, s)
				}
				sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
				for _, s := range syms {
					ups = append(ups, fmt.Sprintf("%s += %d", a.Table.Name(s), r.Update[s]))
				}
				fmt.Fprintf(&b, " do %s", strings.Join(ups, ", "))
			}
			b.WriteString(";\n")
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Format renders the automaton to a string.
func Format(a *ta.TA) (string, error) {
	var b strings.Builder
	if err := Write(&b, a); err != nil {
		return "", err
	}
	return b.String(), nil
}

// renderConstraint pretty-prints `L >= 0` (or `L == 0`) as `lhs >= rhs`,
// moving negative terms to the right-hand side: b0 - 2t + f - 1 >= 0
// becomes b0 + f >= 2*t + 1.
func renderConstraint(a *ta.TA, c expr.Constraint) string {
	lhs := expr.Lin{}
	rhs := expr.Lin{}
	var syms []expr.Sym
	for s := range c.L.Coeffs {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	for _, s := range syms {
		coeff := c.L.Coeffs[s]
		if coeff > 0 {
			_ = lhs.AddTerm(s, coeff)
		} else {
			_ = rhs.AddTerm(s, -coeff)
		}
	}
	if c.L.Const > 0 {
		_ = lhs.AddConst(c.L.Const)
	} else {
		_ = rhs.AddConst(-c.L.Const)
	}
	op := ">="
	if c.Op == expr.EQ {
		op = "=="
	}
	return fmt.Sprintf("%s %s %s", lhs.String(a.Table), op, rhs.String(a.Table))
}
