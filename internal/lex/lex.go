// Package lex is the shared tokenizer for the project's small text formats:
// the ByMC-style LTL property files (internal/ltl) and the threshold
// automaton description format (internal/taformat). It handles identifiers,
// decimal numbers, configurable multi- and single-character operators, and
// line (//) and block (/* */) comments.
package lex

import (
	"fmt"
	"unicode"
)

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number
	Op
)

// Token is one lexeme.
type Token struct {
	Kind Kind
	Text string
	Pos  int // byte offset
	Line int // 1-based
}

// Config selects the operator alphabet.
type Config struct {
	// MultiOps are two-character operators, matched greedily before
	// single-character ones (e.g. "<>", "&&", "->").
	MultiOps []string
	// SingleOps are the permitted single operator characters.
	SingleOps string
}

// Tokens tokenizes src. The returned slice always ends with an EOF token.
func Tokens(src string, cfg Config) ([]Token, error) {
	multi := make(map[string]bool, len(cfg.MultiOps))
	for _, op := range cfg.MultiOps {
		if len(op) != 2 {
			return nil, fmt.Errorf("lex: multi-char operator %q must have length 2", op)
		}
		multi[op] = true
	}
	single := make(map[byte]bool, len(cfg.SingleOps))
	for i := 0; i < len(cfg.SingleOps); i++ {
		single[cfg.SingleOps[i]] = true
	}

	var toks []Token
	line := 1
	i, n := 0, len(src)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			j := i + 2
			for {
				if j+1 >= n {
					return nil, fail("unterminated block comment")
				}
				if src[j] == '\n' {
					line++
				}
				if src[j] == '*' && src[j+1] == '/' {
					break
				}
				j++
			}
			i = j + 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, Token{Ident, src[i:j], i, line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < n && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, Token{Number, src[i:j], i, line})
			i = j
		default:
			if i+1 < n && multi[src[i:i+2]] {
				toks = append(toks, Token{Op, src[i : i+2], i, line})
				i += 2
				continue
			}
			if single[c] {
				toks = append(toks, Token{Op, string(c), i, line})
				i++
				continue
			}
			return nil, fail("unexpected character %q", string(c))
		}
	}
	toks = append(toks, Token{EOF, "", n, line})
	return toks, nil
}
