package lex

import (
	"strings"
	"testing"
)

var cfg = Config{
	MultiOps:  []string{"->", "~>", ">=", "<=", "==", "+="},
	SingleOps: "{}(),;*+-:",
}

func texts(toks []Token) string {
	var out []string
	for _, t := range toks {
		if t.Kind != EOF {
			out = append(out, t.Text)
		}
	}
	return strings.Join(out, " ")
}

func TestTokensBasics(t *testing.T) {
	toks, err := Tokens("r1: A -> B when b0 >= 2*t + 1 - f do b0 += 1;", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := "r1 : A -> B when b0 >= 2 * t + 1 - f do b0 += 1 ;"
	if got := texts(toks); got != want {
		t.Errorf("tokens = %q\nwant     %q", got, want)
	}
	if toks[len(toks)-1].Kind != EOF {
		t.Error("missing EOF token")
	}
}

func TestTokensComments(t *testing.T) {
	toks, err := Tokens("a // line\n/* block\nspanning */ b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); got != "a b" {
		t.Errorf("tokens = %q", got)
	}
	// Line numbers survive comments.
	if toks[1].Line != 3 {
		t.Errorf("b on line %d, want 3", toks[1].Line)
	}
}

func TestTokensErrors(t *testing.T) {
	if _, err := Tokens("a @ b", cfg); err == nil {
		t.Error("expected error for unknown character")
	}
	if _, err := Tokens("/* open", cfg); err == nil {
		t.Error("expected error for unterminated comment")
	}
	if _, err := Tokens("x", Config{MultiOps: []string{"==="}}); err == nil {
		t.Error("expected error for 3-char multi op")
	}
}

func TestMultiBeforeSingle(t *testing.T) {
	toks, err := Tokens("a ~> b - c", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); got != "a ~> b - c" {
		t.Errorf("tokens = %q", got)
	}
	if toks[1].Kind != Op || toks[1].Text != "~>" {
		t.Errorf("second token = %+v, want ~>", toks[1])
	}
}

func TestIdentifiersAndNumbers(t *testing.T) {
	toks, err := Tokens("_x9 42 foo_bar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{Ident, Number, Ident, EOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].Kind, k)
		}
	}
}
