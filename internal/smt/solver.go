// Package smt implements a small decision procedure for quantifier-free
// linear integer arithmetic over nonnegative variables: the fragment that the
// schema encoder (internal/schema) emits. It is the stand-in for the SMT
// backend (Z3) that ByMC uses in the paper.
//
// The core is an exact-arithmetic two-phase simplex over big.Rat for rational
// feasibility, with branch-and-bound on top for integer feasibility, and a
// model-guided lazy case-splitting loop for disjunctions (used for the
// justice/fairness side conditions of liveness queries).
//
// Every variable is implicitly constrained to be >= 0; all quantities in the
// threshold-automata encodings (parameters, location counters, acceleration
// factors) are naturally nonnegative.
package smt

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"repro/internal/expr"
)

// Status is the outcome of a satisfiability check.
type Status int

const (
	// Unsat means the asserted constraints are unsatisfiable.
	Unsat Status = iota + 1
	// Sat means a model was found.
	Sat
	// Unknown means the search budget was exhausted before a decision.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrBudget is returned (wrapped) when a search exceeds its node budget.
var ErrBudget = errors.New("smt: search budget exhausted")

// Solver accumulates constraints over a symbol table and answers
// satisfiability queries. Assertions are scoped with Push/Pop. The zero value
// is not usable; create with NewSolver.
type Solver struct {
	tab         *expr.Table
	constraints []expr.Constraint
	marks       []int

	// Incremental LP state: the feasible tableau for the first lp.count
	// asserted constraints, snapshotted across Push/Pop so that sibling
	// branches restore their parent's basis instead of re-solving phase one.
	lp      lpState
	lpStack []lpState

	// Stats accumulates counters across checks; callers may read or reset.
	Stats Stats
}

type lpState struct {
	tab   *tableau // nil = must rebuild from scratch
	count int      // constraints already incorporated
	// owned reports that tab is referenced by this lpState alone. Push used
	// to clone eagerly; now it aliases the tableau into the saved snapshot
	// and clears owned, and CheckRational clones on the first mutation after
	// that (clone-on-first-check). A deep run of Pushes with no check in
	// between — the seek phase of the incremental schema walker, and
	// branch-and-bound nodes pruned before their first LP — therefore costs
	// no copies at all. An un-owned tableau is never mutated in place.
	owned bool
}

// Stats records solver effort.
type Stats struct {
	LPChecks  int // simplex runs
	Pivots    int // total simplex pivots
	Rebuilds  int // full phase-one solves (vs warm-started dual restores)
	BBNodes   int // branch-and-bound nodes
	CaseSplit int // lazy disjunction branches explored
}

// Add accumulates another solver's effort into st. The parallel schema
// enumeration keeps per-schema Stats and merges them at join, so the
// aggregate is independent of worker scheduling.
func (st *Stats) Add(o Stats) {
	st.LPChecks += o.LPChecks
	st.Pivots += o.Pivots
	st.Rebuilds += o.Rebuilds
	st.BBNodes += o.BBNodes
	st.CaseSplit += o.CaseSplit
}

// Diff returns st minus o, field by field. The incremental schema walker
// snapshots Stats around each charged operation and records the delta, so
// per-schema effort attribution stays exact while one solver serves many
// schemas.
func (st Stats) Diff(o Stats) Stats {
	return Stats{
		LPChecks:  st.LPChecks - o.LPChecks,
		Pivots:    st.Pivots - o.Pivots,
		Rebuilds:  st.Rebuilds - o.Rebuilds,
		BBNodes:   st.BBNodes - o.BBNodes,
		CaseSplit: st.CaseSplit - o.CaseSplit,
	}
}

// NewSolver returns an empty solver over tab.
func NewSolver(tab *expr.Table) *Solver {
	return &Solver{tab: tab}
}

// Assert adds a constraint at the current scope level.
func (s *Solver) Assert(c expr.Constraint) {
	s.constraints = append(s.constraints, c)
}

// AssertAll adds each constraint at the current scope level.
func (s *Solver) AssertAll(cs []expr.Constraint) {
	s.constraints = append(s.constraints, cs...)
}

// Push opens a new assertion scope, saving the warm LP basis so that Pop can
// restore it without re-solving. The basis is saved by reference: the clone
// that protects it from in-scope mutation is deferred to the first check
// that actually mutates it (see lpState.owned).
func (s *Solver) Push() {
	s.marks = append(s.marks, len(s.constraints))
	s.lp.owned = false // tab is now shared with the saved snapshot
	s.lpStack = append(s.lpStack, s.lp)
}

// Pop discards all assertions made since the matching Push. Popping an empty
// stack is a no-op. The restored basis is treated as shared (deeper stack
// entries saved before a check may alias the same tableau), so the next
// mutating check clones it first.
func (s *Solver) Pop() {
	if len(s.marks) == 0 {
		return
	}
	n := s.marks[len(s.marks)-1]
	s.marks = s.marks[:len(s.marks)-1]
	s.constraints = s.constraints[:n]
	s.lp = s.lpStack[len(s.lpStack)-1]
	s.lpStack = s.lpStack[:len(s.lpStack)-1]
}

// NumAssertions reports the number of currently asserted constraints.
func (s *Solver) NumAssertions() int { return len(s.constraints) }

// Model maps symbols to values. Symbols not mentioned by any constraint are
// absent and should be read as zero.
type Model map[expr.Sym]int64

// Value returns the model value of s (0 when absent).
func (m Model) Value(s expr.Sym) int64 { return m[s] }

// RatModel is a rational model as produced by the LP core.
type RatModel map[expr.Sym]*big.Rat

// Value returns the value of s (0 when absent).
func (m RatModel) Value(s expr.Sym) *big.Rat {
	if v, ok := m[s]; ok {
		return v
	}
	return new(big.Rat)
}

// IsIntegral reports whether every value in the model is an integer.
func (m RatModel) IsIntegral() bool {
	for _, v := range m {
		if !v.IsInt() {
			return false
		}
	}
	return true
}

// ToInt converts an integral rational model to an integer model. It returns
// an error if any value is fractional or does not fit in int64.
func (m RatModel) ToInt() (Model, error) {
	out := make(Model, len(m))
	for s, v := range m {
		if !v.IsInt() {
			return nil, fmt.Errorf("smt: value of symbol %d is fractional: %s", s, v)
		}
		n := v.Num()
		if !n.IsInt64() {
			return nil, fmt.Errorf("smt: value of symbol %d exceeds int64: %s", s, v)
		}
		out[s] = n.Int64()
	}
	return out, nil
}

// CheckRational decides satisfiability over the nonnegative rationals.
// On Sat it returns a rational model. Re-checks after new assertions are
// warm-started from the previous feasible basis with dual-simplex pivots.
func (s *Solver) CheckRational() (Status, RatModel, error) {
	s.Stats.LPChecks++
	obsLPChecks.Inc()

	if s.lp.tab != nil && s.lp.count <= len(s.constraints) {
		if len(s.constraints) > s.lp.count && !s.lp.owned {
			// Lazy snapshot: the tableau is aliased by a Push-saved lpState
			// and about to be mutated, so materialize the private copy now.
			// With no new constraints the stored (feasible) tableau is read
			// only and needs no copy at all.
			s.lp.tab = s.lp.tab.clone()
			s.lp.owned = true
			obsLazyClones.Inc()
		}
		t := s.lp.tab
		for _, c := range s.constraints[s.lp.count:] {
			if err := t.addConstraint(c); err != nil {
				return 0, nil, err
			}
		}
		s.lp.count = len(s.constraints)
		feasible, pivots, err := t.dualRestore()
		s.Stats.Pivots += pivots
		obsPivots.Add(int64(pivots))
		if err == nil {
			if !feasible {
				// Leave the state invalid; the caller Pops back to the
				// parent snapshot (or the next check rebuilds).
				s.lp.tab = nil
				return Unsat, nil, nil
			}
			return Sat, t.model(), nil
		}
		if !errors.Is(err, errPivotLimit) {
			return 0, nil, err
		}
		// Degenerate cycling guard tripped: fall through to a fresh solve.
	}

	s.Stats.Rebuilds++
	obsRebuilds.Inc()
	t := newTableau()
	for _, c := range s.constraints {
		if err := t.addConstraint(c); err != nil {
			return 0, nil, err
		}
	}
	feasible, pivots, err := t.solveFresh()
	s.Stats.Pivots += pivots
	obsPivots.Add(int64(pivots))
	if err != nil {
		return 0, nil, err
	}
	if !feasible {
		s.lp.tab = nil
		return Unsat, nil, nil
	}
	s.lp = lpState{tab: t, count: len(s.constraints), owned: true}
	return Sat, t.model(), nil
}

// CheckInteger decides satisfiability over the nonnegative integers using
// branch-and-bound with at most maxNodes LP relaxations. If the budget is
// exhausted it returns Unknown.
func (s *Solver) CheckInteger(maxNodes int) (Status, Model, error) {
	return s.CheckIntegerLimits(ClauseLimits{MaxBBNodes: maxNodes})
}

// CheckIntegerLimits is CheckInteger with the full limit set: besides the
// node budget it honors Deadline and Stop — consulted once every pollStride
// branch-and-bound nodes, so a long integer search winds down within a
// bounded number of nodes of a timeout or a cooperative interrupt instead
// of running to its node budget. Exceeding any limit returns Unknown.
func (s *Solver) CheckIntegerLimits(limits ClauseLimits) (Status, Model, error) {
	if limits.MaxBBNodes <= 0 {
		limits.MaxBBNodes = 1 << 20
	}
	return s.checkIntegerWith(limits, newPoller(limits))
}

// checkIntegerWith is CheckIntegerLimits sharing the caller's poller, so a
// case-splitting search and its leaf branch-and-bound runs stride their
// Deadline/Stop polls over one combined event stream.
func (s *Solver) checkIntegerWith(limits ClauseLimits, p *poller) (Status, Model, error) {
	nodes := 0
	st, m, err := s.branchAndBound(limits, &nodes, p)
	return st, m, err
}

func (s *Solver) branchAndBound(limits ClauseLimits, nodes *int, p *poller) (Status, Model, error) {
	if *nodes >= limits.MaxBBNodes {
		return Unknown, nil, nil
	}
	if p.aborted() {
		return Unknown, nil, nil
	}
	*nodes++
	s.Stats.BBNodes++
	obsBBNodes.Inc()

	st, rm, err := s.CheckRational()
	if err != nil {
		return 0, nil, err
	}
	if st == Unsat {
		return Unsat, nil, nil
	}
	// Find a fractional variable to branch on.
	var frac expr.Sym = expr.NoSym
	var fracVal *big.Rat
	for sym, v := range rm {
		if !v.IsInt() {
			if frac == expr.NoSym || sym < frac {
				frac = sym
				fracVal = v
			}
		}
	}
	if frac == expr.NoSym {
		m, err := rm.ToInt()
		if err != nil {
			return 0, nil, err
		}
		return Sat, m, nil
	}

	floor, ok := ratFloor(fracVal)
	if !ok || floor == math.MaxInt64 {
		// The floor does not fit in int64 (or floor+1 would not): asserting a
		// wrapped bound would be a garbage cut that can flip the verdict.
		// Surface the budget-style honest answer instead.
		return Unknown, nil, nil
	}

	// Branch x <= floor.
	s.Push()
	le, err := expr.Le(expr.Var(frac), expr.NewLin(floor))
	if err != nil {
		s.Pop()
		return 0, nil, err
	}
	s.Assert(le)
	st, m, err := s.branchAndBound(limits, nodes, p)
	s.Pop()
	if err != nil || st == Sat {
		return st, m, err
	}
	sawUnknown := st == Unknown

	// Branch x >= floor+1.
	s.Push()
	ge, err := expr.Ge(expr.Var(frac), expr.NewLin(floor+1))
	if err != nil {
		s.Pop()
		return 0, nil, err
	}
	s.Assert(ge)
	st, m, err = s.branchAndBound(limits, nodes, p)
	s.Pop()
	if err != nil || st == Sat {
		return st, m, err
	}
	if sawUnknown || st == Unknown {
		return Unknown, nil, nil
	}
	return Unsat, nil, nil
}

// ratFloor returns floor(r) and whether it fits in int64. The old code
// called Int64 unchecked, so a relaxation vertex beyond ±2^63 silently
// wrapped into a nonsense branching bound.
func ratFloor(r *big.Rat) (int64, bool) {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	// big.Int.Quo truncates toward zero; adjust for negatives. All our
	// variables are nonnegative so this is defensive only.
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		return 0, false
	}
	return q.Int64(), true
}

// Verify checks that model satisfies every asserted constraint; it is used by
// tests and by counterexample replay to guard against solver bugs.
func (s *Solver) Verify(m Model) error {
	val := func(sym expr.Sym) int64 { return m.Value(sym) }
	for i, c := range s.constraints {
		ok, err := c.Holds(val)
		if err != nil {
			return fmt.Errorf("smt: evaluating constraint %d: %w", i, err)
		}
		if !ok {
			return fmt.Errorf("smt: model violates constraint %d: %s", i, c.String(s.tab))
		}
		for sym := range c.L.Coeffs {
			if m.Value(sym) < 0 {
				return fmt.Errorf("smt: model assigns negative value to %s", s.tab.Name(sym))
			}
		}
	}
	return nil
}
