package smt

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/expr"
)

// TestRatFloor pins the floor computation branch-and-bound splits on,
// including the overflow guard: a rational whose floor does not fit in an
// int64 must be reported as unrepresentable, never silently wrapped (the
// wrapped value used to become a branching bound, corrupting the search).
func TestRatFloor(t *testing.T) {
	cases := []struct {
		num, den int64
		floor    int64
		ok       bool
	}{
		{7, 2, 3, true},
		{-7, 2, -4, true},
		{4, 1, 4, true},
		{-4, 1, -4, true},
		{0, 5, 0, true},
		{math.MaxInt64, 1, math.MaxInt64, true},
		{math.MinInt64, 1, math.MinInt64, true},
	}
	for _, c := range cases {
		f, ok := ratFloor(big.NewRat(c.num, c.den))
		if ok != c.ok || f != c.floor {
			t.Errorf("ratFloor(%d/%d) = %d, %v; want %d, %v", c.num, c.den, f, ok, c.floor, c.ok)
		}
	}

	// (5*2^62 + 1) / 2: fractional, floor = 5*2^61 > MaxInt64.
	huge := new(big.Rat).SetFrac(
		new(big.Int).Add(new(big.Int).Lsh(big.NewInt(5), 62), big.NewInt(1)),
		big.NewInt(2))
	if _, ok := ratFloor(huge); ok {
		t.Errorf("ratFloor(%s) reported ok, want overflow", huge)
	}
	if _, ok := ratFloor(new(big.Rat).Neg(huge)); ok {
		t.Errorf("ratFloor(-%s) reported ok, want overflow", huge)
	}
}

// TestIntegerHugeFloorUnknown is the end-to-end regression for the int64
// wraparound: {2x - 5y - 1 = 0, y >= 2^62} has the unique rational vertex
// y = 2^62, x = (5*2^62+1)/2, so branch-and-bound's first split is on x,
// whose floor (5*2^61) exceeds MaxInt64. The old code wrapped that floor
// into a negative branching bound; the fixed search must surface Unknown
// (the instance is integer-satisfiable, but only at values no int64 model
// can represent).
func TestIntegerHugeFloorUnknown(t *testing.T) {
	tab := expr.NewTable()
	x := tab.Intern("hx")
	y := tab.Intern("hy")

	l := expr.NewLin(-1)
	if err := l.AddTerm(x, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.AddTerm(y, -5); err != nil {
		t.Fatal(err)
	}
	ge, err := expr.Ge(expr.Var(y), expr.NewLin(1<<62))
	if err != nil {
		t.Fatal(err)
	}

	s := NewSolver(tab)
	s.Assert(expr.Constraint{L: l, Op: expr.EQ})
	s.Assert(ge)

	st, rm, err := s.CheckRational()
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("rational relaxation: %v, want sat", st)
	}
	if rm[x].IsInt() {
		t.Fatalf("x = %s is integral; the instance no longer exercises the floor overflow", rm[x])
	}

	ist, m, err := s.CheckInteger(0)
	if err != nil {
		t.Fatal(err)
	}
	if ist != Unknown {
		t.Fatalf("CheckInteger = %v (model %v), want Unknown: no int64 model exists and the floor overflows", ist, m)
	}
}
