package smt

import (
	"testing"
	"time"

	"repro/internal/expr"
)

// TestCheckIntegerLimitsStop: a fired stop flag must abort branch-and-bound
// at the first node with Unknown — this is how the engine timeout reaches
// into a long integer solve instead of waiting for it between schemas.
func TestCheckIntegerLimitsStop(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	// 2x = 1: rationally feasible (x = 1/2), integrally infeasible — the
	// solver must branch to find out, so the limit paths are exercised.
	s.Assert(eq(t, lin(map[expr.Sym]int64{x: 2}, 0), expr.NewLin(1)))

	st, _, err := s.CheckIntegerLimits(ClauseLimits{Stop: func() bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Errorf("status with fired stop = %v, want Unknown", st)
	}

	st, _, err = s.CheckIntegerLimits(ClauseLimits{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Errorf("status with expired deadline = %v, want Unknown", st)
	}

	// Sanity: without limits the same problem resolves (to Unsat).
	st, _, err = s.CheckIntegerLimits(ClauseLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Errorf("status without limits = %v, want Unsat", st)
	}
}

// TestCheckIntegerLimitsMatchesCheckInteger: the wrapper and the limits path
// agree on a feasible problem.
func TestCheckIntegerLimitsMatchesCheckInteger(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	y := tab.Intern("y")
	s.Assert(ge(t, lin(map[expr.Sym]int64{x: 1, y: 1}, 0), expr.NewLin(3)))
	s.Assert(le(t, lin(map[expr.Sym]int64{x: 2, y: 1}, 0), expr.NewLin(5)))

	st1, m1, err := s.CheckInteger(0)
	if err != nil {
		t.Fatal(err)
	}
	st2, m2, err := s.CheckIntegerLimits(ClauseLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if st1 != Sat || st2 != Sat {
		t.Fatalf("statuses %v/%v, want Sat/Sat", st1, st2)
	}
	if err := s.Verify(m1); err != nil {
		t.Error(err)
	}
	if err := s.Verify(m2); err != nil {
		t.Error(err)
	}
}
