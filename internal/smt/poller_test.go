package smt

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/expr"
)

// hardIntegerInstance builds Jeroslow's branch-and-bound-killer: n variables
// (n odd) each bounded by 1, with sum of 2*x_i forced to exactly n. The
// left side is even for any integer assignment, so the problem is Unsat,
// but the target sits mid-range: fixing any variable to 0 or 1 leaves the
// LP relaxation feasible, so infeasibility surfaces only at full depth and
// the tree is exponential in n — enough search events to exercise the
// strided Deadline/Stop polling.
func hardIntegerInstance(t *testing.T, n int) *Solver {
	t.Helper()
	if n%2 == 0 {
		t.Fatalf("hardIntegerInstance needs odd n, got %d", n)
	}
	tab := expr.NewTable()
	s := NewSolver(tab)
	sum := map[expr.Sym]int64{}
	for i := 0; i < n; i++ {
		x := tab.Intern(fmt.Sprintf("x%d", i))
		s.Assert(le(t, expr.Var(x), expr.NewLin(1)))
		sum[x] = 2
	}
	s.Assert(eq(t, lin(sum, 0), expr.NewLin(int64(n))))
	return s
}

// TestStridedStopFiresWithinTolerance: a Stop hook is consulted on a stride,
// not per node, so after it first reports true the search must wind down
// within one stride's worth of branch-and-bound nodes — not run to budget.
func TestStridedStopFiresWithinTolerance(t *testing.T) {
	s := hardIntegerInstance(t, 13)

	// Sanity: the unrestricted search needs well over a stride of nodes, so
	// an early abort is distinguishable from a natural finish.
	st, _, err := s.CheckIntegerLimits(ClauseLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Fatalf("unrestricted status = %v, want Unsat", st)
	}
	if s.Stats.BBNodes <= 2*pollStride {
		t.Fatalf("instance too easy: %d nodes, need > %d", s.Stats.BBNodes, 2*pollStride)
	}

	// Stop returns true from the second poll on: the first poll (event 1)
	// lets the search start, the second lands at most pollStride events
	// later, and abortion must follow immediately.
	polls := 0
	stop := func() bool {
		polls++
		return polls >= 2
	}
	s.Stats = Stats{}
	st, _, err = s.CheckIntegerLimits(ClauseLimits{Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Errorf("status with stop = %v, want Unknown", st)
	}
	if polls != 2 {
		t.Errorf("stop polled %d times after firing, want exactly 2", polls)
	}
	// The search saw at most pollStride+1 events before the fatal poll and
	// none after (every later aborted() short-circuits on the cached flag).
	if s.Stats.BBNodes > pollStride+1 {
		t.Errorf("search ran %d nodes past a fired stop, want <= %d", s.Stats.BBNodes, pollStride+1)
	}
}

// TestStridedDeadlineFiresWithinTolerance: same property for Deadline — an
// already-expired deadline kills the search on its first poll, i.e. before
// the second branch-and-bound node.
func TestStridedDeadlineFiresWithinTolerance(t *testing.T) {
	s := hardIntegerInstance(t, 13)
	st, _, err := s.CheckIntegerLimits(ClauseLimits{Deadline: time.Now().Add(-time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Errorf("status with expired deadline = %v, want Unknown", st)
	}
	if s.Stats.BBNodes != 0 {
		t.Errorf("expired deadline still ran %d nodes, want 0", s.Stats.BBNodes)
	}
}

// TestStridedPollingPreservesVerdict: configuring a generous Deadline must
// not change the verdict or any effort statistic relative to the unlimited
// search — the stride only affects when limits are noticed, never what the
// search does between polls.
func TestStridedPollingPreservesVerdict(t *testing.T) {
	plain := hardIntegerInstance(t, 11)
	stPlain, _, err := plain.CheckIntegerLimits(ClauseLimits{})
	if err != nil {
		t.Fatal(err)
	}

	timed := hardIntegerInstance(t, 11)
	stTimed, _, err := timed.CheckIntegerLimits(ClauseLimits{Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}

	if stPlain != stTimed {
		t.Errorf("verdict changed under deadline: %v vs %v", stPlain, stTimed)
	}
	if plain.Stats != timed.Stats {
		t.Errorf("stats changed under deadline: %+v vs %+v", plain.Stats, timed.Stats)
	}
}

// TestStridedPollingClauses: the clause search shares the poller with its
// leaf integer searches, so a fired stop aborts case splitting within one
// stride of combined events as well.
func TestStridedPollingClauses(t *testing.T) {
	s := hardIntegerInstance(t, 13)
	// A trivial tautological clause (constants only) forces the
	// clause-search entry path without touching the solver's symbols.
	cl := ClauseOf(ge(t, expr.NewLin(1), expr.NewLin(0)))

	polls := 0
	stop := func() bool {
		polls++
		return polls >= 2
	}
	st, _, err := s.CheckClauses([]Clause{cl}, ClauseLimits{Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Errorf("status with stop = %v, want Unknown", st)
	}
	if total := s.Stats.BBNodes + s.Stats.CaseSplit; total > pollStride+2 {
		t.Errorf("combined search ran %d events past a fired stop, want <= %d", total, pollStride+2)
	}
}
