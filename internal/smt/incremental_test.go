package smt

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
)

// randConstraint builds a random small linear constraint over the symbols.
func randConstraint(rng *rand.Rand, syms []expr.Sym) expr.Constraint {
	l := expr.NewLin(int64(rng.Intn(13) - 6))
	for _, s := range syms {
		_ = l.AddTerm(s, int64(rng.Intn(5)-2))
	}
	op := expr.GE
	if rng.Intn(5) == 0 {
		op = expr.EQ
	}
	return expr.Constraint{L: l, Op: op}
}

// TestIncrementalMatchesFresh drives a solver through a random sequence of
// Assert/Push/Pop/Check operations and, after every check, compares the
// warm-started (dual-simplex) verdict against a fresh solver over the same
// assertion set. This is the regression net for the incremental LP core.
func TestIncrementalMatchesFresh(t *testing.T) {
	tab := expr.NewTable()
	syms := []expr.Sym{tab.Intern("a"), tab.Intern("b"), tab.Intern("c"), tab.Intern("d")}

	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := NewSolver(tab)
		var stack [][]expr.Constraint // mirror of the assertion scopes
		stack = append(stack, nil)

		current := func() []expr.Constraint {
			var all []expr.Constraint
			for _, frame := range stack {
				all = append(all, frame...)
			}
			return all
		}

		for step := 0; step < 60; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // assert
				c := randConstraint(rng, syms)
				s.Assert(c)
				stack[len(stack)-1] = append(stack[len(stack)-1], c)
			case op < 6: // push
				s.Push()
				stack = append(stack, nil)
			case op < 8: // pop
				if len(stack) > 1 {
					s.Pop()
					stack = stack[:len(stack)-1]
				}
			default: // check and compare against a fresh solver
				st, m, err := s.CheckRational()
				if err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				fresh := NewSolver(tab)
				fresh.AssertAll(current())
				fst, _, err := fresh.CheckRational()
				if err != nil {
					t.Fatalf("trial %d step %d: fresh: %v", trial, step, err)
				}
				if st != fst {
					t.Fatalf("trial %d step %d: incremental=%v fresh=%v over %d constraints",
						trial, step, st, fst, len(current()))
				}
				if st == Sat {
					// The rational model must satisfy every constraint.
					for i, c := range current() {
						ok, herr := holdsRational(c, m)
						if herr != nil {
							t.Fatal(herr)
						}
						if !ok {
							t.Fatalf("trial %d step %d: model violates constraint %d: %s",
								trial, step, i, c.String(tab))
						}
					}
				}
			}
		}
	}
}

// TestIncrementalIntegerMatchesFresh repeats the comparison for the integer
// decision (branch-and-bound runs many warm-started LPs internally).
func TestIncrementalIntegerMatchesFresh(t *testing.T) {
	tab := expr.NewTable()
	syms := []expr.Sym{tab.Intern("x"), tab.Intern("y"), tab.Intern("z")}

	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		s := NewSolver(tab)
		var cons []expr.Constraint
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			c := randConstraint(rng, syms)
			cons = append(cons, c)
			s.Assert(c)
		}
		// Bound the domain to keep B&B small.
		for _, sym := range syms {
			b, err := expr.Le(expr.Var(sym), expr.NewLin(7))
			if err != nil {
				t.Fatal(err)
			}
			cons = append(cons, b)
			s.Assert(b)
		}

		// First a rational check to warm the basis, then the integer check.
		if _, _, err := s.CheckRational(); err != nil {
			t.Fatal(err)
		}
		st, m, err := s.CheckInteger(0)
		if err != nil {
			t.Fatal(err)
		}

		fresh := NewSolver(tab)
		fresh.AssertAll(cons)
		fst, _, err := fresh.CheckInteger(0)
		if err != nil {
			t.Fatal(err)
		}
		if st != fst {
			t.Fatalf("trial %d: incremental=%v fresh=%v", trial, st, fst)
		}
		if st == Sat {
			if err := s.Verify(m); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

// TestIncrementalMixedChecksMatchFresh extends the random driver with the
// access pattern the incremental schema walker actually produces: rational
// and integer checks interleaved at arbitrary scope depths, and bulk
// re-assertion of a whole constraint set into a tableau that was just popped
// several levels at once (the chunk-boundary seek). Every check is compared
// against a fresh solver over the mirrored assertion set.
func TestIncrementalMixedChecksMatchFresh(t *testing.T) {
	tab := expr.NewTable()
	syms := []expr.Sym{tab.Intern("mx"), tab.Intern("my"), tab.Intern("mz")}

	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		s := NewSolver(tab)
		var stack [][]expr.Constraint
		stack = append(stack, nil)
		// Base-frame domain bounds keep every integer search far from its
		// node budget, so Unknown never muddies the comparison.
		for _, sym := range syms {
			b, err := expr.Le(expr.Var(sym), expr.NewLin(7))
			if err != nil {
				t.Fatal(err)
			}
			s.Assert(b)
			stack[0] = append(stack[0], b)
		}

		current := func() []expr.Constraint {
			var all []expr.Constraint
			for _, frame := range stack {
				all = append(all, frame...)
			}
			return all
		}

		for step := 0; step < 80; step++ {
			switch op := rng.Intn(12); {
			case op < 4: // assert
				c := randConstraint(rng, syms)
				s.Assert(c)
				stack[len(stack)-1] = append(stack[len(stack)-1], c)
			case op < 6: // push
				s.Push()
				stack = append(stack, nil)
			case op < 8: // pop, possibly several levels at once
				if len(stack) == 1 {
					continue
				}
				k := 1 + rng.Intn(len(stack)-1)
				for i := 0; i < k; i++ {
					s.Pop()
					stack = stack[:len(stack)-1]
				}
				if k > 1 {
					// Deep pop: re-assert the surviving set wholesale, the way
					// a cursor rebuilds a prefix after seeking backwards. The
					// mirror gets the same duplicates so the comparison stays
					// assertion-for-assertion.
					all := current()
					s.AssertAll(all)
					stack[len(stack)-1] = append(stack[len(stack)-1], all...)
				}
			case op < 10: // rational check vs fresh
				st, m, err := s.CheckRational()
				if err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				fresh := NewSolver(tab)
				fresh.AssertAll(current())
				fst, _, err := fresh.CheckRational()
				if err != nil {
					t.Fatalf("trial %d step %d: fresh: %v", trial, step, err)
				}
				if st != fst {
					t.Fatalf("trial %d step %d: rational incremental=%v fresh=%v", trial, step, st, fst)
				}
				if st == Sat {
					for i, c := range current() {
						ok, herr := holdsRational(c, m)
						if herr != nil {
							t.Fatal(herr)
						}
						if !ok {
							t.Fatalf("trial %d step %d: model violates constraint %d: %s",
								trial, step, i, c.String(tab))
						}
					}
				}
			default: // integer check vs fresh
				st, m, err := s.CheckInteger(0)
				if err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				fresh := NewSolver(tab)
				fresh.AssertAll(current())
				fst, _, err := fresh.CheckInteger(0)
				if err != nil {
					t.Fatalf("trial %d step %d: fresh: %v", trial, step, err)
				}
				if st != fst {
					t.Fatalf("trial %d step %d: integer incremental=%v fresh=%v over %d constraints",
						trial, step, st, fst, len(current()))
				}
				if st == Sat {
					if err := s.Verify(m); err != nil {
						t.Fatalf("trial %d step %d: %v", trial, step, err)
					}
				}
			}
		}
	}
}

// TestWarmStartActuallyWarm asserts the machinery is engaged: a second check
// after one extra assertion must not rebuild from scratch.
func TestWarmStartActuallyWarm(t *testing.T) {
	tab := expr.NewTable()
	x := tab.Intern("wx")
	y := tab.Intern("wy")
	s := NewSolver(tab)
	ge, err := expr.Ge(expr.Var(x), expr.NewLin(3))
	if err != nil {
		t.Fatal(err)
	}
	s.Assert(ge)
	if st, _, err := s.CheckRational(); err != nil || st != Sat {
		t.Fatalf("first check: %v %v", st, err)
	}
	rebuilds := s.Stats.Rebuilds

	s.Push()
	ge2, err := expr.Ge(expr.Var(y), expr.Var(x))
	if err != nil {
		t.Fatal(err)
	}
	s.Assert(ge2)
	if st, _, err := s.CheckRational(); err != nil || st != Sat {
		t.Fatalf("second check: %v %v", st, err)
	}
	if s.Stats.Rebuilds != rebuilds {
		t.Errorf("second check rebuilt the tableau (rebuilds %d -> %d)", rebuilds, s.Stats.Rebuilds)
	}
	s.Pop()

	// After Pop the snapshot basis serves the next check too.
	if st, _, err := s.CheckRational(); err != nil || st != Sat {
		t.Fatalf("post-pop check: %v %v", st, err)
	}
	if s.Stats.Rebuilds != rebuilds {
		t.Errorf("post-pop check rebuilt the tableau")
	}
}

// TestUnsatThenRecover: after an Unsat verdict invalidates the warm basis,
// the solver recovers by rebuilding on demand.
func TestUnsatThenRecover(t *testing.T) {
	tab := expr.NewTable()
	x := tab.Intern("rx")
	s := NewSolver(tab)
	ge, err := expr.Ge(expr.Var(x), expr.NewLin(5))
	if err != nil {
		t.Fatal(err)
	}
	s.Assert(ge)
	if st, _, _ := s.CheckRational(); st != Sat {
		t.Fatal("expected sat")
	}
	s.Push()
	le, err := expr.Le(expr.Var(x), expr.NewLin(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Assert(le)
	if st, _, _ := s.CheckRational(); st != Unsat {
		t.Fatal("expected unsat")
	}
	// Re-check at the same level: still unsat (forces a rebuild path).
	if st, _, _ := s.CheckRational(); st != Unsat {
		t.Fatal("expected unsat on re-check")
	}
	s.Pop()
	if st, _, _ := s.CheckRational(); st != Sat {
		t.Fatal("expected sat after pop")
	}
}
