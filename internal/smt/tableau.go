package smt

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/expr"
)

// tableau is a dictionary-form simplex tableau for the feasibility problem
//
//	find x >= 0 subject to each constraint  L_i(x) >= 0
//
// Each constraint becomes a slack row  w_i = const_i + Σ a_ij·x_j  with
// w_i >= 0. Initial feasibility is decided with the textbook phase-one
// auxiliary variable x0 (maximize -x0) and Bland's rule, in exact
// arithmetic.
//
// After a feasible solve the tableau supports *incremental* use: new
// constraints are appended as rows (rewritten through the current basis) and
// feasibility is restored with dual-simplex pivots. This is what makes the
// DPLL(T)-style clause search and branch-and-bound affordable: a child node
// differs from its parent by one or two rows and typically needs only a few
// pivots instead of a full phase-one solve.
type tableau struct {
	colOf   map[expr.Sym]int // symbol -> variable id
	symOf   map[int]expr.Sym // variable id -> symbol (original variables only)
	nextVar int

	nonbasic []int   // variable ids of nonbasic columns
	basic    []int   // variable ids of basic rows
	consts   []rat   // row constants
	coef     [][]rat // row coefficients, parallel to nonbasic

	// phase-one objective (nil outside the initial solve)
	objA []rat
	objC rat
	x0   int // variable id of the auxiliary variable, -1 if absent
}

// maxPivots bounds a single simplex phase; Bland's rule guarantees
// termination so this is purely defensive.
const maxPivots = 200000

var errPivotLimit = errors.New("smt: simplex pivot limit exceeded")

func newTableau() *tableau {
	return &tableau{
		colOf: make(map[expr.Sym]int),
		symOf: make(map[int]expr.Sym),
		x0:    -1,
	}
}

// clone deep-copies the tableau. rat values are immutable (operations always
// allocate fresh big.Rats), so copying the slices suffices.
func (t *tableau) clone() *tableau {
	out := &tableau{
		colOf:   make(map[expr.Sym]int, len(t.colOf)),
		symOf:   make(map[int]expr.Sym, len(t.symOf)),
		nextVar: t.nextVar,
		x0:      t.x0,
		objC:    t.objC,
	}
	for k, v := range t.colOf {
		out.colOf[k] = v
	}
	for k, v := range t.symOf {
		out.symOf[k] = v
	}
	out.nonbasic = append([]int(nil), t.nonbasic...)
	out.basic = append([]int(nil), t.basic...)
	out.consts = append([]rat(nil), t.consts...)
	out.coef = make([][]rat, len(t.coef))
	for i, row := range t.coef {
		out.coef[i] = append([]rat(nil), row...)
	}
	if t.objA != nil {
		out.objA = append([]rat(nil), t.objA...)
	}
	return out
}

// colFor returns the variable id for a symbol, creating a fresh nonbasic
// column when the symbol is new.
func (t *tableau) colFor(s expr.Sym) int {
	if id, ok := t.colOf[s]; ok {
		return id
	}
	id := t.nextVar
	t.nextVar++
	t.colOf[s] = id
	t.symOf[id] = s
	t.nonbasic = append(t.nonbasic, id)
	for i := range t.coef {
		t.coef[i] = append(t.coef[i], ratZero)
	}
	if t.objA != nil {
		t.objA = append(t.objA, ratZero)
	}
	return id
}

func (t *tableau) nonbasicColOf(id int) int {
	for j, v := range t.nonbasic {
		if v == id {
			return j
		}
	}
	return -1
}

func (t *tableau) basicRowOf(id int) int {
	for i, v := range t.basic {
		if v == id {
			return i
		}
	}
	return -1
}

// addGE appends the row for L >= 0, rewriting basic variables through their
// current dictionary rows.
func (t *tableau) addGE(l expr.Lin) {
	// Intern all symbols first, in symbol order, so the column layout is
	// stable. Ranging over the coefficient map here would randomize the
	// layout per run — and with it Bland's-rule pivot choices and which
	// optimal vertex the relaxation lands on, making solver effort (and
	// branch-and-bound paths) differ between identical solves.
	syms := make([]expr.Sym, 0, len(l.Coeffs))
	for s := range l.Coeffs {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	for _, s := range syms {
		t.colFor(s)
	}
	rowConst := ratInt(l.Const)
	row := make([]rat, len(t.nonbasic))
	for s, a := range l.Coeffs {
		id := t.colOf[s]
		ar := ratInt(a)
		if j := t.nonbasicColOf(id); j >= 0 {
			row[j] = row[j].add(ar)
			continue
		}
		r := t.basicRowOf(id)
		rowConst = rowConst.add(ar.mul(t.consts[r]))
		for j := range t.coef[r] {
			row[j] = row[j].add(ar.mul(t.coef[r][j]))
		}
	}
	slack := t.nextVar
	t.nextVar++
	t.basic = append(t.basic, slack)
	t.consts = append(t.consts, rowConst)
	t.coef = append(t.coef, row)
}

// addConstraint appends rows for a constraint (two for an equality).
func (t *tableau) addConstraint(c expr.Constraint) error {
	switch c.Op {
	case expr.GE:
		t.addGE(c.L)
	case expr.EQ:
		t.addGE(c.L)
		t.addGE(c.L.Neg())
	default:
		return fmt.Errorf("smt: unsupported constraint operator %v", c.Op)
	}
	return nil
}

// solveFresh runs phase one from scratch. It returns feasibility and the
// pivot count.
func (t *tableau) solveFresh() (bool, int, error) {
	worst, worstRow := ratZero, -1
	for i, c := range t.consts {
		if c.cmp(worst) < 0 {
			worst = c
			worstRow = i
		}
	}
	if worstRow == -1 {
		return true, 0, nil
	}
	// A row with a negative constant and no variables at all can never be
	// repaired (it encodes a violated variable-free constraint).
	for i, c := range t.consts {
		if c.sign() < 0 && len(t.coef[i]) == 0 {
			return false, 0, nil
		}
	}

	// Introduce x0 with coefficient +1 in every row; objective is -x0.
	t.x0 = t.nextVar
	t.nextVar++
	x0col := len(t.nonbasic)
	t.nonbasic = append(t.nonbasic, t.x0)
	for i := range t.coef {
		t.coef[i] = append(t.coef[i], ratInt(1))
	}
	t.objA = make([]rat, len(t.nonbasic))
	t.objA[x0col] = ratInt(-1)
	t.objC = ratZero

	// Special first pivot: enter x0, leave the most-negative row.
	t.pivot(x0col, worstRow)
	pivots := 1

	for {
		if pivots > maxPivots {
			return false, pivots, errPivotLimit
		}
		// Bland entering rule: smallest variable id with positive objective
		// coefficient.
		enter := -1
		for j, a := range t.objA {
			if a.sign() > 0 && (enter == -1 || t.nonbasic[j] < t.nonbasic[enter]) {
				enter = j
			}
		}
		if enter == -1 {
			feasible := t.objC.sign() == 0
			if feasible {
				if err := t.dropX0(); err != nil {
					return false, pivots, err
				}
			}
			t.objA = nil
			return feasible, pivots, nil
		}
		// Ratio test over rows where the entering coefficient is negative.
		leave := -1
		var best rat
		for i, row := range t.coef {
			if row[enter].sign() >= 0 {
				continue
			}
			ratio := t.consts[i].div(row[enter].neg())
			if leave == -1 || ratio.cmp(best) < 0 ||
				(ratio.cmp(best) == 0 && t.basic[i] < t.basic[leave]) {
				leave = i
				best = ratio
			}
		}
		if leave == -1 {
			// -x0 is bounded above by 0, so phase one cannot be unbounded.
			return false, pivots, errors.New("smt: phase-one simplex unbounded")
		}
		t.pivot(enter, leave)
		pivots++
	}
}

// dropX0 removes the auxiliary variable after a successful phase one. If x0
// is basic (necessarily at value 0), it is pivoted out first.
func (t *tableau) dropX0() error {
	if t.x0 == -1 {
		return nil
	}
	if r := t.basicRowOf(t.x0); r >= 0 {
		// Degenerate: pivot x0 out on any nonzero column.
		col := -1
		for j, a := range t.coef[r] {
			if a.sign() != 0 {
				col = j
				break
			}
		}
		if col == -1 {
			// The row reads x0 = 0: delete it outright.
			t.basic = append(t.basic[:r], t.basic[r+1:]...)
			t.consts = append(t.consts[:r], t.consts[r+1:]...)
			t.coef = append(t.coef[:r], t.coef[r+1:]...)
		} else {
			t.pivot(col, r)
		}
	}
	col := t.nonbasicColOf(t.x0)
	if col == -1 {
		if t.basicRowOf(t.x0) >= 0 {
			return errors.New("smt: failed to eliminate auxiliary variable")
		}
		t.x0 = -1
		return nil
	}
	t.nonbasic = append(t.nonbasic[:col], t.nonbasic[col+1:]...)
	for i := range t.coef {
		t.coef[i] = append(t.coef[i][:col], t.coef[i][col+1:]...)
	}
	if t.objA != nil {
		t.objA = append(t.objA[:col], t.objA[col+1:]...)
	}
	t.x0 = -1
	return nil
}

// dualRestore re-establishes primal feasibility after rows were appended,
// using dual-simplex pivots with Bland-style anti-cycling (the objective is
// identically zero, so any basis is dual-feasible). It returns false when
// some row is irreparable, i.e. the system became infeasible.
func (t *tableau) dualRestore() (bool, int, error) {
	pivots := 0
	for {
		if pivots > maxPivots {
			return false, pivots, errPivotLimit
		}
		// Leaving row: smallest basic variable id among negative constants.
		leave := -1
		for i, c := range t.consts {
			if c.sign() < 0 && (leave == -1 || t.basic[i] < t.basic[leave]) {
				leave = i
			}
		}
		if leave == -1 {
			return true, pivots, nil
		}
		// Entering column: the row reads w = C + Σ A_j·x_j with C < 0, so
		// only columns with A_j > 0 can repair it. Bland: smallest id.
		enter := -1
		for j, a := range t.coef[leave] {
			if a.sign() > 0 && (enter == -1 || t.nonbasic[j] < t.nonbasic[enter]) {
				enter = j
			}
		}
		if enter == -1 {
			return false, pivots, nil // row is irreparable: infeasible
		}
		t.pivot(enter, leave)
		pivots++
	}
}

// pivot makes nonbasic column e basic and the basic variable of row r
// nonbasic, rewriting every row and the objective.
func (t *tableau) pivot(e, r int) {
	row := t.coef[r]
	p := row[e]
	invNeg := ratInt(-1).div(p)

	leavingVar := t.basic[r]
	enteringVar := t.nonbasic[e]

	// Solve row r for the entering variable:
	//   x_e = (-C/p) + (1/p)·x_leaving + Σ_{j≠e} (-A_j/p)·x_j
	newConst := t.consts[r].mul(invNeg)
	newRow := make([]rat, len(row))
	for j := range row {
		if j == e {
			newRow[j] = ratInt(1).div(p)
		} else {
			newRow[j] = row[j].mul(invNeg)
		}
	}
	t.basic[r] = enteringVar
	t.nonbasic[e] = leavingVar
	t.consts[r] = newConst
	t.coef[r] = newRow

	for i := range t.coef {
		if i == r {
			continue
		}
		d := t.coef[i][e]
		if d.sign() == 0 {
			continue
		}
		t.consts[i] = t.consts[i].add(d.mul(newConst))
		ri := t.coef[i]
		for j := range ri {
			if j == e {
				ri[j] = d.mul(newRow[j])
			} else {
				ri[j] = ri[j].add(d.mul(newRow[j]))
			}
		}
	}
	if t.objA != nil {
		d := t.objA[e]
		if d.sign() != 0 {
			t.objC = t.objC.add(d.mul(newConst))
			for j := range t.objA {
				if j == e {
					t.objA[j] = d.mul(newRow[j])
				} else {
					t.objA[j] = t.objA[j].add(d.mul(newRow[j]))
				}
			}
		}
	}
}

// model extracts the current basic solution for the original variables.
// Nonbasic variables are 0; basic variables take their row constants.
func (t *tableau) model() RatModel {
	m := make(RatModel, len(t.symOf))
	for _, s := range t.symOf {
		m[s] = new(big.Rat)
	}
	for i, b := range t.basic {
		if s, ok := t.symOf[b]; ok {
			m[s] = t.consts[i].toBig()
		}
	}
	return m
}
