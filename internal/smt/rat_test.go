package smt

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestRatBasics(t *testing.T) {
	a := ratInt(3)
	b := rat{n: 1, d: 2}
	sum := a.add(b)
	if sum.String() != "7/2" {
		t.Errorf("3 + 1/2 = %s, want 7/2", sum)
	}
	if got := a.mul(b).String(); got != "3/2" {
		t.Errorf("3 * 1/2 = %s, want 3/2", got)
	}
	if got := a.div(b).String(); got != "6" {
		t.Errorf("3 / (1/2) = %s, want 6", got)
	}
	if got := a.sub(b).String(); got != "5/2" {
		t.Errorf("3 - 1/2 = %s, want 5/2", got)
	}
	if a.cmp(b) <= 0 {
		t.Error("3 should compare greater than 1/2")
	}
	if !a.isInt() || b.isInt() {
		t.Error("isInt misclassified")
	}
}

func TestRatZeroValue(t *testing.T) {
	var z rat
	if z.sign() != 0 {
		t.Error("zero value should have sign 0")
	}
	if got := z.add(ratInt(5)); got.cmp(ratInt(5)) != 0 {
		t.Errorf("0 + 5 = %s", got)
	}
	if got := z.mul(ratInt(5)); got.sign() != 0 {
		t.Errorf("0 * 5 = %s", got)
	}
	if !z.isInt() {
		t.Error("zero should be integral")
	}
}

func TestRatNormalization(t *testing.T) {
	r := rat{n: 4, d: -8}.norm()
	if r.n != -1 || r.d != 2 {
		t.Errorf("4/-8 normalized to %d/%d, want -1/2", r.n, r.d)
	}
}

func TestRatOverflowPromotion(t *testing.T) {
	huge := ratInt(math.MaxInt64)
	sum := huge.add(huge)
	want := new(big.Rat).SetInt64(math.MaxInt64)
	want.Add(want, want)
	if sum.toBig().Cmp(want) != 0 {
		t.Errorf("MaxInt64 + MaxInt64 = %s, want %s", sum, want.RatString())
	}
	prod := huge.mul(huge)
	wantP := new(big.Rat).SetInt64(math.MaxInt64)
	wantP.Mul(wantP, wantP)
	if prod.toBig().Cmp(wantP) != 0 {
		t.Errorf("MaxInt64^2 = %s, want %s", prod, wantP.RatString())
	}
	// Arithmetic continues to work in the promoted representation.
	back := prod.div(huge)
	if back.toBig().Cmp(new(big.Rat).SetInt64(math.MaxInt64)) != 0 {
		t.Errorf("MaxInt64^2 / MaxInt64 = %s", back)
	}
}

func TestRatNegMinInt64(t *testing.T) {
	r := ratInt(math.MinInt64)
	n := r.neg()
	want := new(big.Rat).SetInt64(math.MinInt64)
	want.Neg(want)
	if n.toBig().Cmp(want) != 0 {
		t.Errorf("neg(MinInt64) = %s, want %s", n, want.RatString())
	}
}

func TestRatDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero should panic")
		}
	}()
	_ = ratInt(1).div(ratZero)
}

// Property: rat arithmetic agrees with big.Rat on random small fractions.
func TestQuickRatMatchesBigRat(t *testing.T) {
	mk := func(n int16, d uint8) (rat, *big.Rat) {
		den := int64(d%31) + 1
		return rat{n: int64(n), d: den}.norm(), big.NewRat(int64(n), den)
	}
	prop := func(n1 int16, d1 uint8, n2 int16, d2 uint8, op uint8) bool {
		a, ba := mk(n1, d1)
		b, bb := mk(n2, d2)
		var got rat
		want := new(big.Rat)
		switch op % 4 {
		case 0:
			got = a.add(b)
			want.Add(ba, bb)
		case 1:
			got = a.sub(b)
			want.Sub(ba, bb)
		case 2:
			got = a.mul(b)
			want.Mul(ba, bb)
		case 3:
			if bb.Sign() == 0 {
				return true
			}
			got = a.div(b)
			want.Quo(ba, bb)
		}
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRatMinInt64EdgeCases pins the MinInt64 hazards found in review: the
// fast int64 path cannot represent -MinInt64, so these inputs must promote
// to big.Rat with correct values and signs.
func TestRatMinInt64EdgeCases(t *testing.T) {
	minI := int64(math.MinInt64)

	// MinInt64 * -1 must be +2^63, not MinInt64.
	got := ratInt(minI).mul(ratInt(-1))
	want := new(big.Rat).SetInt64(minI)
	want.Neg(want)
	if got.toBig().Cmp(want) != 0 {
		t.Errorf("MinInt64 * -1 = %s, want %s", got, want.RatString())
	}

	// 1 / MinInt64 is a small NEGATIVE number; sign must say so.
	inv := ratInt(1).div(ratInt(minI))
	if inv.sign() != -1 {
		t.Errorf("sign(1/MinInt64) = %d, want -1 (value %s)", inv.sign(), inv)
	}
	wantInv := big.NewRat(1, 1)
	wantInv.Quo(wantInv, new(big.Rat).SetInt64(minI))
	if inv.toBig().Cmp(wantInv) != 0 {
		t.Errorf("1/MinInt64 = %s, want %s", inv, wantInv.RatString())
	}

	// Normalizing n/MinInt64 must not leave a negative denominator behind.
	r := rat{n: 3, d: minI}.norm()
	if r.sign() != -1 {
		t.Errorf("sign(3/MinInt64) = %d, want -1", r.sign())
	}
	if r.cmp(ratZero) != -1 {
		t.Errorf("3/MinInt64 should compare below zero")
	}

	// Addition landing exactly on MinInt64 is representable and must be exact.
	half := ratInt(math.MinInt64 / 2)
	sum := half.add(half)
	if sum.toBig().Cmp(new(big.Rat).SetInt64(minI)) != 0 {
		t.Errorf("-2^62 + -2^62 = %s, want MinInt64", sum)
	}
	// ... and further arithmetic on it stays correct.
	neg := sum.neg()
	if neg.toBig().Cmp(want) != 0 {
		t.Errorf("neg(MinInt64) = %s, want %s", neg, want.RatString())
	}
}
