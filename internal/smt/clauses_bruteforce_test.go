package smt

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
)

// TestCheckClausesAgainstBruteForce cross-validates the lazy DPLL(T) search
// against explicit enumeration of all disjunct combinations on random small
// instances: for each combination, integer feasibility is decided
// independently; CheckClauses must say Sat iff some combination is Sat.
func TestCheckClausesAgainstBruteForce(t *testing.T) {
	tab := expr.NewTable()
	syms := []expr.Sym{tab.Intern("ca"), tab.Intern("cb"), tab.Intern("cc")}

	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))

		var hard []expr.Constraint
		for i := 0; i < 1+rng.Intn(3); i++ {
			hard = append(hard, randConstraint(rng, syms))
		}
		// Bound the domain so brute-force integer checks stay small.
		for _, s := range syms {
			b, err := expr.Le(expr.Var(s), expr.NewLin(6))
			if err != nil {
				t.Fatal(err)
			}
			hard = append(hard, b)
		}
		var clauses []Clause
		for i := 0; i < 1+rng.Intn(3); i++ {
			var cl Clause
			for j := 0; j < 1+rng.Intn(3); j++ {
				cl = append(cl, Lit{C: randConstraint(rng, syms)})
			}
			clauses = append(clauses, cl)
		}

		// Lazy search.
		s := NewSolver(tab)
		s.AssertAll(hard)
		got, model, err := s.CheckClauses(clauses, ClauseLimits{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Brute force over disjunct choices.
		want := Unsat
		var rec func(i int, chosen []expr.Constraint) bool
		rec = func(i int, chosen []expr.Constraint) bool {
			if i == len(clauses) {
				fresh := NewSolver(tab)
				fresh.AssertAll(hard)
				fresh.AssertAll(chosen)
				st, _, err := fresh.CheckInteger(0)
				if err != nil {
					t.Fatal(err)
				}
				return st == Sat
			}
			for _, lit := range clauses[i] {
				if rec(i+1, append(chosen, lit.C)) {
					return true
				}
			}
			return false
		}
		if rec(0, nil) {
			want = Sat
		}

		if got != want {
			t.Fatalf("trial %d: CheckClauses=%v brute-force=%v (hard=%d clauses=%d)",
				trial, got, want, len(hard), len(clauses))
		}
		if got == Sat {
			// The model must satisfy hard constraints and one lit per clause.
			if err := s.Verify(model); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			val := func(sym expr.Sym) int64 { return model.Value(sym) }
			for ci, cl := range clauses {
				ok := false
				for _, lit := range cl {
					h, err := lit.C.Holds(val)
					if err != nil {
						t.Fatal(err)
					}
					if h {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: model violates clause %d", trial, ci)
				}
			}
		}
	}
}
