package smt

import (
	"math/big"
	"time"

	"repro/internal/expr"
)

// Lit is one disjunct of a Clause. Asserting the literal asserts C plus
// every constraint in Implied: facts entailed by C that the linear
// relaxation cannot derive by itself but that prune the search dramatically
// (e.g. a rising guard asserted at one frame also holds at all later
// frames).
type Lit struct {
	C       expr.Constraint
	Implied []expr.Constraint
}

// Clause is a disjunction of literals: at least one must hold. Clauses
// express the non-convex side conditions of the schema encodings:
// per-firing guard obligations ("factor is zero OR the guard holds here")
// and the justice preconditions of liveness queries (Appendix F's
// "location empty OR trigger still locked").
type Clause []Lit

// ClauseOf builds a clause from plain constraints without implied facts.
func ClauseOf(cs ...expr.Constraint) Clause {
	out := make(Clause, len(cs))
	for i, c := range cs {
		out[i] = Lit{C: c}
	}
	return out
}

// ClauseLimits bounds the lazy case-splitting search.
type ClauseLimits struct {
	// MaxSplits bounds the number of branches explored (0 = default).
	MaxSplits int
	// MaxBBNodes bounds branch-and-bound nodes per leaf (0 = default).
	MaxBBNodes int
	// Deadline, when nonzero, aborts the search with Unknown once passed.
	// It is consulted once every pollStride search events, not at every
	// node, so expiry is detected within pollStride events.
	Deadline time.Time
	// Stop, when set, aborts the search with Unknown on a true return (the
	// cooperative-interrupt hook signal handlers use to stop a long check
	// cleanly). Polled on the same stride as Deadline.
	Stop func() bool
}

func (l ClauseLimits) withDefaults() ClauseLimits {
	if l.MaxSplits <= 0 {
		l.MaxSplits = 1 << 16
	}
	if l.MaxBBNodes <= 0 {
		l.MaxBBNodes = 1 << 12
	}
	return l
}

// pollStride is how many search events (case splits + branch-and-bound
// nodes) elapse between consecutive Deadline/Stop consultations. The old
// code called time.Now() at every node — measurable on the branch-and-bound
// hot path — so polling is strided: the first event polls (a search that
// starts past its deadline dies immediately), then every pollStride-th.
// An expired deadline is therefore honored within pollStride events.
const pollStride = 256

// poller tracks the strided Deadline/Stop polling for one search. It is
// shared between the case-splitting and branch-and-bound layers so the
// stride counts their events as a single stream.
type poller struct {
	limits  ClauseLimits
	events  int
	stopped bool
}

func newPoller(limits ClauseLimits) *poller {
	return &poller{limits: limits}
}

// aborted reports whether the search must wind down with Unknown. With no
// Deadline and no Stop configured it is a pair of nil checks — the
// unlimited hot path stays free of clock reads and counter traffic.
func (p *poller) aborted() bool {
	if p.stopped {
		return true
	}
	if p.limits.Deadline.IsZero() && p.limits.Stop == nil {
		return false
	}
	p.events++
	if p.events%pollStride != 1 && pollStride > 1 {
		return false
	}
	obsDeadlinePolls.Inc()
	if !p.limits.Deadline.IsZero() && time.Now().After(p.limits.Deadline) {
		p.stopped = true
	}
	if !p.stopped && p.limits.Stop != nil && p.limits.Stop() {
		p.stopped = true
	}
	return p.stopped
}

// CheckClauses decides integer satisfiability of the asserted constraints
// conjoined with every clause, DPLL(T)-style: the rational relaxation prunes
// branches, and splitting happens lazily — only on clauses the current
// rational model violates. When the model satisfies every clause, the
// model-chosen literals are asserted and an integer model is sought; if
// that fails, the search falls back to systematic branching.
//
// On Sat the returned model satisfies the hard constraints and at least one
// literal of every clause.
func (s *Solver) CheckClauses(clauses []Clause, limits ClauseLimits) (Status, Model, error) {
	limits = limits.withDefaults()
	splits := 0
	return s.checkClausesRec(clauses, limits, &splits, newPoller(limits))
}

func (s *Solver) assertLit(l Lit) {
	s.Assert(l.C)
	s.AssertAll(l.Implied)
}

func (s *Solver) checkClausesRec(clauses []Clause, limits ClauseLimits, splits *int, p *poller) (Status, Model, error) {
	if *splits >= limits.MaxSplits {
		return Unknown, nil, nil
	}
	if p.aborted() {
		return Unknown, nil, nil
	}
	*splits++
	s.Stats.CaseSplit++
	obsCaseSplits.Inc()

	st, rm, err := s.CheckRational()
	if err != nil {
		return 0, nil, err
	}
	if st == Unsat {
		return Unsat, nil, nil
	}

	// Find a clause the rational model violates.
	violated := -1
	for ci, clause := range clauses {
		sat := false
		for _, l := range clause {
			ok, herr := holdsRational(l.C, rm)
			if herr != nil {
				return 0, nil, herr
			}
			if ok {
				sat = true
				break
			}
		}
		if !sat {
			violated = ci
			break
		}
	}

	if violated == -1 {
		// Every clause is rationally satisfied. Pin the model-chosen
		// literals and look for an integer model.
		s.Push()
		for _, clause := range clauses {
			for _, l := range clause {
				ok, herr := holdsRational(l.C, rm)
				if herr != nil {
					s.Pop()
					return 0, nil, herr
				}
				if ok {
					s.assertLit(l)
					break
				}
			}
		}
		st, m, err := s.checkIntegerWith(limits, p)
		s.Pop()
		if err != nil {
			return 0, nil, err
		}
		if st == Sat {
			return Sat, m, nil
		}
		if len(clauses) == 0 {
			return st, nil, nil
		}
		// The pinned literal combination has no integer model; fall back to
		// systematic branching on the first clause.
		violated = 0
	}

	clause := clauses[violated]
	rest := make([]Clause, 0, len(clauses)-1)
	rest = append(rest, clauses[:violated]...)
	rest = append(rest, clauses[violated+1:]...)

	sawUnknown := false
	for _, l := range clause {
		s.Push()
		s.assertLit(l)
		st, m, err := s.checkClausesRec(rest, limits, splits, p)
		s.Pop()
		if err != nil {
			return 0, nil, err
		}
		switch st {
		case Sat:
			return Sat, m, nil
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil, nil
	}
	return Unsat, nil, nil
}

// holdsRational evaluates a constraint under a rational model.
func holdsRational(c expr.Constraint, m RatModel) (bool, error) {
	acc := new(big.Rat).SetInt64(c.L.Const)
	term := new(big.Rat)
	for s, coeff := range c.L.Coeffs {
		term.SetInt64(coeff)
		term.Mul(term, m.Value(s))
		acc.Add(acc, term)
	}
	switch c.Op {
	case expr.GE:
		return acc.Sign() >= 0, nil
	case expr.EQ:
		return acc.Sign() == 0, nil
	default:
		return false, nil
	}
}
