package smt

import "repro/internal/obs"

// Observational-only counters (see internal/obs: racing global accumulators,
// never folded into verdicts). Each increments alongside the per-solver
// Stats field of the same name; deadline_polls counts actual Deadline/Stop
// consultations, i.e. search events divided by pollStride.
var (
	obsLPChecks      = obs.Default.Counter("smt", "lp_checks")
	obsPivots        = obs.Default.Counter("smt", "pivots")
	obsRebuilds      = obs.Default.Counter("smt", "rebuilds")
	obsBBNodes       = obs.Default.Counter("smt", "bb_nodes")
	obsCaseSplits    = obs.Default.Counter("smt", "case_splits")
	obsDeadlinePolls = obs.Default.Counter("smt", "deadline_polls")
	// obsLazyClones counts tableau copies materialized by clone-on-first-
	// check; Push itself no longer copies, so clones − pushes measures how
	// much the lazy snapshot discipline saves on check-free scopes.
	obsLazyClones = obs.Default.Counter("smt", "lazy_clones")
)
