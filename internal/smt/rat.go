package smt

import (
	"fmt"
	"math"
	"math/big"
)

// rat is an exact rational number optimized for the small values that
// dominate simplex tableaus: it stores an int64 numerator/denominator pair
// and transparently promotes to big.Rat when an operation would overflow.
// The zero value is 0.
//
// Invariant: when b == nil, d > 0 and gcd(|n|, d) == 1 (or n == 0 and d == 1).
type rat struct {
	n, d int64
	b    *big.Rat
}

func ratInt(v int64) rat { return rat{n: v, d: 1} }

var ratZero = rat{n: 0, d: 1}

func (r rat) norm() rat {
	if r.b != nil {
		return r
	}
	if r.d == 0 {
		// Only reachable via the zero value; treat as 0.
		return ratZero
	}
	// MinInt64 cannot be negated or safely abs'd in int64; promote.
	if r.n == math.MinInt64 || r.d == math.MinInt64 {
		return rat{b: big.NewRat(r.n, r.d)}
	}
	if r.d < 0 {
		r.n, r.d = -r.n, -r.d
	}
	g := gcd64(abs64(r.n), r.d)
	if g > 1 {
		r.n /= g
		r.d /= g
	}
	return r
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func (r rat) toBig() *big.Rat {
	if r.b != nil {
		return r.b
	}
	d := r.d
	if d == 0 {
		d = 1
	}
	return big.NewRat(r.n, d)
}

func fromBig(b *big.Rat) rat {
	if b.Num().IsInt64() && b.Denom().IsInt64() {
		return rat{n: b.Num().Int64(), d: b.Denom().Int64()}.norm()
	}
	return rat{b: new(big.Rat).Set(b)}
}

func mulOverflows(a, b int64) bool {
	if a == 0 || b == 0 {
		return false
	}
	// MinInt64 * -1 wraps to MinInt64 and passes the division check.
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return true
	}
	p := a * b
	return p/b != a
}

func addOverflows(a, b int64) bool {
	s := a + b
	return (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0)
}

// fastOK reports whether both operands can go through the int64 fast path:
// MinInt64 components break abs/gcd/negation and must take the big path.
func fastOK(r, o rat) bool {
	return r.b == nil && o.b == nil &&
		r.n != math.MinInt64 && r.d != math.MinInt64 &&
		o.n != math.MinInt64 && o.d != math.MinInt64
}

func (r rat) add(o rat) rat {
	if fastOK(r, o) {
		rd, od := r.d, o.d
		if rd == 0 {
			rd = 1
		}
		if od == 0 {
			od = 1
		}
		// n = r.n*od + o.n*rd ; d = rd*od
		if !mulOverflows(r.n, od) && !mulOverflows(o.n, rd) && !mulOverflows(rd, od) {
			x, y := r.n*od, o.n*rd
			if !addOverflows(x, y) {
				return rat{n: x + y, d: rd * od}.norm()
			}
		}
	}
	return fromBig(new(big.Rat).Add(r.toBig(), o.toBig()))
}

func (r rat) sub(o rat) rat { return r.add(o.neg()) }

func (r rat) neg() rat {
	if r.b == nil {
		if r.n == -9223372036854775808 { // -MinInt64 overflows
			return fromBig(new(big.Rat).Neg(r.toBig()))
		}
		out := r
		out.n = -out.n
		return out.norm()
	}
	return fromBig(new(big.Rat).Neg(r.b))
}

func (r rat) mul(o rat) rat {
	if fastOK(r, o) {
		rd, od := r.d, o.d
		if rd == 0 {
			rd = 1
		}
		if od == 0 {
			od = 1
		}
		// Cross-reduce before multiplying to keep magnitudes small.
		g1 := gcd64(abs64(r.n), od)
		g2 := gcd64(abs64(o.n), rd)
		rn, rod := r.n/g1, od/g1
		on, rrd := o.n/g2, rd/g2
		if !mulOverflows(rn, on) && !mulOverflows(rod, rrd) {
			return rat{n: rn * on, d: rod * rrd}.norm()
		}
	}
	return fromBig(new(big.Rat).Mul(r.toBig(), o.toBig()))
}

func (r rat) div(o rat) rat {
	if o.sign() == 0 {
		// Division by zero is a programming error in the simplex core.
		panic("smt: rational division by zero")
	}
	inv := o
	if o.b == nil && o.n != math.MinInt64 && o.d != math.MinInt64 {
		od := o.d
		if od == 0 {
			od = 1
		}
		inv = rat{n: od, d: o.n}.norm()
	} else {
		inv = fromBig(new(big.Rat).Inv(o.toBig()))
	}
	return r.mul(inv)
}

func (r rat) sign() int {
	if r.b != nil {
		return r.b.Sign()
	}
	switch {
	case r.n > 0:
		return 1
	case r.n < 0:
		return -1
	default:
		return 0
	}
}

func (r rat) cmp(o rat) int {
	return r.sub(o).sign()
}

func (r rat) isInt() bool {
	if r.b != nil {
		return r.b.IsInt()
	}
	return r.d == 1 || r.n == 0
}

func (r rat) String() string {
	if r.b != nil {
		return r.b.RatString()
	}
	d := r.d
	if d == 0 {
		d = 1
	}
	if d == 1 {
		return fmt.Sprintf("%d", r.n)
	}
	return fmt.Sprintf("%d/%d", r.n, d)
}
