package smt

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
)

func ge(t *testing.T, a, b expr.Lin) expr.Constraint {
	t.Helper()
	c, err := expr.Ge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func le(t *testing.T, a, b expr.Lin) expr.Constraint {
	t.Helper()
	c, err := expr.Le(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func eq(t *testing.T, a, b expr.Lin) expr.Constraint {
	t.Helper()
	c, err := expr.Eq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func lin(terms map[expr.Sym]int64, c int64) expr.Lin {
	l := expr.NewLin(c)
	for s, v := range terms {
		_ = l.AddTerm(s, v)
	}
	return l
}

func TestTrivialFeasibility(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")

	s.Assert(ge(t, expr.Var(x), expr.NewLin(0)))
	st, m, err := s.CheckInteger(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	if err := s.Verify(m); err != nil {
		t.Error(err)
	}
}

func TestConstantInfeasible(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	// -1 >= 0 is unsatisfiable without any variables.
	s.Assert(expr.GEZero(expr.NewLin(-1)))
	st, _, err := s.CheckRational()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Errorf("status = %v, want Unsat", st)
	}
}

func TestNonnegativityImplicit(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	// x <= -1 contradicts the implicit x >= 0.
	s.Assert(le(t, expr.Var(x), expr.NewLin(-1)))
	st, _, err := s.CheckRational()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Errorf("status = %v, want Unsat", st)
	}
}

func TestPhaseOneNeeded(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	y := tab.Intern("y")

	s.Assert(ge(t, expr.Var(x), expr.NewLin(3)))
	s.Assert(ge(t, expr.Var(y), expr.NewLin(2)))
	s.Assert(le(t, lin(map[expr.Sym]int64{x: 1, y: 1}, 0), expr.NewLin(6)))
	st, m, err := s.CheckInteger(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("x>=3,y>=2,x+y<=6: status %v, want Sat", st)
	}
	if err := s.Verify(m); err != nil {
		t.Error(err)
	}

	s.Push()
	s.Assert(le(t, lin(map[expr.Sym]int64{x: 1, y: 1}, 0), expr.NewLin(4)))
	st, _, err = s.CheckRational()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Errorf("x>=3,y>=2,x+y<=4: status %v, want Unsat", st)
	}
	s.Pop()

	// After Pop the relaxed system is satisfiable again.
	st, _, err = s.CheckRational()
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Errorf("after Pop: status %v, want Sat", st)
	}
}

func TestEqualities(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	y := tab.Intern("y")

	// x == 2y, x + y == 9  ->  x=6, y=3.
	s.Assert(eq(t, expr.Var(x), expr.Term(y, 2)))
	s.Assert(eq(t, lin(map[expr.Sym]int64{x: 1, y: 1}, 0), expr.NewLin(9)))
	st, m, err := s.CheckInteger(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	if m.Value(x) != 6 || m.Value(y) != 3 {
		t.Errorf("model x=%d y=%d, want 6,3", m.Value(x), m.Value(y))
	}
}

func TestIntegerCutsOffFractionalLP(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")

	// 2x == 1 is rationally satisfiable (x=1/2) but has no integer solution.
	s.Assert(eq(t, expr.Term(x, 2), expr.NewLin(1)))
	st, _, err := s.CheckRational()
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("rational status = %v, want Sat", st)
	}
	st, _, err = s.CheckInteger(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Errorf("integer status = %v, want Unsat", st)
	}
}

func TestBranchAndBoundFindsIntegerPoint(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	y := tab.Intern("y")

	// 2x + 3y == 7 has integer solutions (x=2,y=1) but fractional vertices.
	s.Assert(eq(t, lin(map[expr.Sym]int64{x: 2, y: 3}, 0), expr.NewLin(7)))
	st, m, err := s.CheckInteger(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	if err := s.Verify(m); err != nil {
		t.Error(err)
	}
}

func TestResilienceStyleConstraints(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	n := tab.Intern("n")
	tt := tab.Intern("t")
	f := tab.Intern("f")

	// n > 3t, t >= f: satisfiable, e.g. n=4, t=1, f=1.
	s.Assert(ge(t, expr.Var(n), lin(map[expr.Sym]int64{tt: 3}, 1)))
	s.Assert(ge(t, expr.Var(tt), expr.Var(f)))
	s.Assert(ge(t, expr.Var(tt), expr.NewLin(1)))
	st, m, err := s.CheckInteger(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("resilience: status %v, want Sat", st)
	}
	if err := s.Verify(m); err != nil {
		t.Error(err)
	}

	// Additionally requiring n <= 3t flips it to Unsat.
	s.Push()
	s.Assert(le(t, expr.Var(n), expr.Term(tt, 3)))
	st, _, err = s.CheckRational()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Errorf("n>3t and n<=3t: status %v, want Unsat", st)
	}
	s.Pop()
}

func TestCheckClauses(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	y := tab.Intern("y")

	s.Assert(le(t, expr.Var(x), expr.NewLin(5)))
	clauses := []Clause{
		ClauseOf(ge(t, expr.Var(x), expr.NewLin(10)), ge(t, expr.Var(y), expr.NewLin(3))),
	}
	st, m, err := s.CheckClauses(clauses, ClauseLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	if m.Value(y) < 3 {
		t.Errorf("y = %d, want >= 3 (x >= 10 branch is blocked)", m.Value(y))
	}

	// Make both disjuncts impossible.
	s.Push()
	s.Assert(le(t, expr.Var(y), expr.NewLin(2)))
	st, _, err = s.CheckClauses(clauses, ClauseLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Unsat {
		t.Errorf("status = %v, want Unsat", st)
	}
	s.Pop()
}

func TestCheckClausesMultiple(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	y := tab.Intern("y")
	z := tab.Intern("z")

	// x + y + z == 4 with clauses forcing x>=2 or y>=2, and y==0 or z==0.
	s.Assert(eq(t, lin(map[expr.Sym]int64{x: 1, y: 1, z: 1}, 0), expr.NewLin(4)))
	clauses := []Clause{
		ClauseOf(ge(t, expr.Var(x), expr.NewLin(2)), ge(t, expr.Var(y), expr.NewLin(2))),
		ClauseOf(expr.EQZero(expr.Var(y)), expr.EQZero(expr.Var(z))),
	}
	st, m, err := s.CheckClauses(clauses, ClauseLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if st != Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	sum := m.Value(x) + m.Value(y) + m.Value(z)
	if sum != 4 {
		t.Errorf("x+y+z = %d, want 4", sum)
	}
	if !(m.Value(x) >= 2 || m.Value(y) >= 2) {
		t.Errorf("clause 1 violated in model %v", m)
	}
	if !(m.Value(y) == 0 || m.Value(z) == 0) {
		t.Errorf("clause 2 violated in model %v", m)
	}
}

// TestRandomAgainstBruteForce cross-validates the solver against exhaustive
// enumeration on random small integer systems.
func TestRandomAgainstBruteForce(t *testing.T) {
	tab := expr.NewTable()
	syms := []expr.Sym{tab.Intern("a"), tab.Intern("b"), tab.Intern("c")}
	rng := rand.New(rand.NewSource(42))
	const bound = 5 // brute-force domain [0,bound]^3

	for trial := 0; trial < 200; trial++ {
		s := NewSolver(tab)
		ncons := 2 + rng.Intn(4)
		var cons []expr.Constraint
		for i := 0; i < ncons; i++ {
			l := expr.NewLin(int64(rng.Intn(11) - 5))
			for _, sym := range syms {
				_ = l.AddTerm(sym, int64(rng.Intn(5)-2))
			}
			op := expr.GE
			if rng.Intn(4) == 0 {
				op = expr.EQ
			}
			cons = append(cons, expr.Constraint{L: l, Op: op})
		}
		// Keep the brute-force domain sound: bound each variable.
		for _, sym := range syms {
			cons = append(cons, le(t, expr.Var(sym), expr.NewLin(bound)))
		}
		s.AssertAll(cons)

		bruteSat := false
	brute:
		for a := int64(0); a <= bound; a++ {
			for b := int64(0); b <= bound; b++ {
				for c := int64(0); c <= bound; c++ {
					vals := map[expr.Sym]int64{syms[0]: a, syms[1]: b, syms[2]: c}
					ok := true
					for _, con := range cons {
						h, err := con.Holds(func(s expr.Sym) int64 { return vals[s] })
						if err != nil {
							t.Fatal(err)
						}
						if !h {
							ok = false
							break
						}
					}
					if ok {
						bruteSat = true
						break brute
					}
				}
			}
		}

		st, m, err := s.CheckInteger(0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bruteSat && st != Sat {
			t.Fatalf("trial %d: brute force found a model but solver says %v\nconstraints: %v", trial, st, render(cons, tab))
		}
		if !bruteSat && st == Sat {
			t.Fatalf("trial %d: solver found %v but brute force says unsat\nconstraints: %v", trial, m, render(cons, tab))
		}
		if st == Sat {
			if err := s.Verify(m); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func render(cons []expr.Constraint, tab *expr.Table) []string {
	out := make([]string, len(cons))
	for i, c := range cons {
		out[i] = c.String(tab)
	}
	return out
}

func TestPushPopBalance(t *testing.T) {
	tab := expr.NewTable()
	s := NewSolver(tab)
	x := tab.Intern("x")
	s.Assert(ge(t, expr.Var(x), expr.NewLin(1)))
	if n := s.NumAssertions(); n != 1 {
		t.Fatalf("assertions = %d, want 1", n)
	}
	s.Push()
	s.Assert(ge(t, expr.Var(x), expr.NewLin(5)))
	s.Push()
	s.Assert(le(t, expr.Var(x), expr.NewLin(2)))
	if n := s.NumAssertions(); n != 3 {
		t.Fatalf("assertions = %d, want 3", n)
	}
	s.Pop()
	s.Pop()
	if n := s.NumAssertions(); n != 1 {
		t.Fatalf("assertions after pops = %d, want 1", n)
	}
	s.Pop() // extra pop is a no-op
	if n := s.NumAssertions(); n != 1 {
		t.Fatalf("assertions after extra pop = %d, want 1", n)
	}
}
