package service

import (
	"sync"

	"repro/internal/schema"
)

// flightGroup deduplicates concurrent identical verification runs: all
// callers presenting the same content-address share one engine run and
// receive the same result. This is the request-coalescing layer above the
// cache — the cache deduplicates across time, the group across concurrency,
// so a thundering herd of identical submissions costs one solve.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  schema.Result
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn under the key, or waits for the in-flight run of the same key.
// The second return reports whether the caller shared another caller's run
// (false for the leader).
func (g *flightGroup) do(key string, fn func() (schema.Result, error)) (schema.Result, bool, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.res, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}
