package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// HTTPClient is the shared JSON-over-HTTP client of the verification stack:
// `holistic verify -remote`, the loadgen, and the cluster workers all speak
// through it. Its one job beyond plumbing is backpressure etiquette — a 429
// is an invitation to come back, not a failure, so the client honors
// Retry-After, layers jittered exponential backoff on top, and only gives up
// once a bounded retry budget is spent. Transport errors are retried on the
// same schedule when RetryTransport is set (cluster workers outlive
// coordinator restarts that way); otherwise they fail fast.
type HTTPClient struct {
	// HTTP is the underlying client (default: a client with a 2-minute
	// overall timeout; verification responses can be slow to compute).
	HTTP *http.Client
	// MaxAttempts bounds total tries per request, first included (default 5).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 200ms); the delay for
	// attempt k is min(BaseDelay<<k, MaxDelay) plus up to 50% jitter, and
	// never below the server's Retry-After.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step (default 3s).
	MaxDelay time.Duration
	// Seed makes the jitter replayable (0 = 1): retry timing never affects
	// verdicts, but deterministic schedules keep torture failures replayable.
	Seed int64
	// RetryTransport retries connection-level failures too (for daemons that
	// must ride out a server restart); off, they surface immediately.
	RetryTransport bool
	// OnRetry, when set, observes every shed-and-retried attempt (the 429
	// count feeds the loadgen's shed-rate statistic).
	OnRetry func(status int, delay time.Duration)
	// Logf receives one line per retry (default: silent).
	Logf func(format string, args ...any)

	mu  sync.Mutex
	rng *rand.Rand
}

func (c *HTTPClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 2 * time.Minute}
}

func (c *HTTPClient) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 5
}

func (c *HTTPClient) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// backoff computes the sleep before retry attempt (1-based), folding in the
// server's Retry-After hint when larger.
func (c *HTTPClient) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxd := c.MaxDelay
	if maxd <= 0 {
		maxd = 3 * time.Second
	}
	d := base << (attempt - 1)
	if d > maxd || d <= 0 {
		d = maxd
	}
	c.mu.Lock()
	if c.rng == nil {
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	d += time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads a Retry-After header in seconds (the only form the
// servers here emit); absent or unparseable yields zero.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// errorBodyOf decodes the standard {"error": ...} payload, falling back to
// the raw body.
func errorBodyOf(data []byte) string {
	var eb errorBody
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	if len(data) > 200 {
		data = data[:200]
	}
	return string(bytes.TrimSpace(data))
}

// DoJSON sends one JSON request (in == nil sends no body) and decodes a 2xx
// response into out (out == nil discards it). It returns the final HTTP
// status: 429s are retried per the budget above and only the last one is
// returned; any other non-2xx returns an error carrying the server's message
// without retrying. A zero status means the transport failed.
func (c *HTTPClient) DoJSON(ctx context.Context, method, url string, in, out any) (int, error) {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return 0, err
		}
	}
	attempts := c.maxAttempts()
	var lastErr error
	lastStatus := 0
	for attempt := 1; ; attempt++ {
		var rd io.Reader
		if in != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return 0, err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		var retryAfter time.Duration
		switch {
		case err != nil:
			lastStatus, lastErr = 0, err
			if !c.RetryTransport {
				return 0, err
			}
		case resp.StatusCode == http.StatusTooManyRequests:
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			retryAfter = parseRetryAfter(resp.Header)
			lastStatus = resp.StatusCode
			lastErr = fmt.Errorf("server shed the request: %s", errorBodyOf(data))
		default:
			defer resp.Body.Close()
			if resp.StatusCode/100 != 2 {
				data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				return resp.StatusCode, fmt.Errorf("server returned %d: %s", resp.StatusCode, errorBodyOf(data))
			}
			if out != nil && resp.StatusCode != http.StatusNoContent {
				if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
					return resp.StatusCode, fmt.Errorf("decoding response: %w", err)
				}
			}
			return resp.StatusCode, nil
		}
		if attempt >= attempts {
			return lastStatus, fmt.Errorf("%w (after %d attempts)", lastErr, attempt)
		}
		d := c.backoff(attempt, retryAfter)
		if c.OnRetry != nil {
			c.OnRetry(lastStatus, d)
		}
		c.logf("service: attempt %d/%d failed (%v); retrying in %v", attempt, attempts, lastErr, d)
		select {
		case <-ctx.Done():
			return lastStatus, ctx.Err()
		case <-time.After(d):
		}
	}
}

// PostJSON is DoJSON with POST.
func (c *HTTPClient) PostJSON(ctx context.Context, url string, in, out any) (int, error) {
	return c.DoJSON(ctx, http.MethodPost, url, in, out)
}

// GetJSON is DoJSON with GET and no request body.
func (c *HTTPClient) GetJSON(ctx context.Context, url string, out any) (int, error) {
	return c.DoJSON(ctx, http.MethodGet, url, nil, out)
}

// HardenServer applies the slow-client defenses every HTTP server in this
// repo must carry: an unset ReadHeaderTimeout lets one slowloris connection
// pin a handler goroutine forever, and an unset IdleTimeout accumulates dead
// keep-alive connections. Values are only filled when unset.
func HardenServer(s *http.Server) *http.Server {
	if s.ReadHeaderTimeout == 0 {
		s.ReadHeaderTimeout = 10 * time.Second
	}
	if s.IdleTimeout == 0 {
		s.IdleTimeout = 2 * time.Minute
	}
	return s
}
