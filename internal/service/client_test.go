package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// A 429 with Retry-After is retried until the server relents, and the retry
// wait never undercuts the server's hint.
func TestClientRetries429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var retries []int
	c := &HTTPClient{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		OnRetry:     func(status int, _ time.Duration) { retries = append(retries, status) },
	}
	var out struct {
		OK bool `json:"ok"`
	}
	status, err := c.GetJSON(context.Background(), ts.URL, &out)
	if err != nil || status != http.StatusOK || !out.OK {
		t.Fatalf("GetJSON = (%d, %v), out=%+v; want 200 ok", status, err, out)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(retries) != 2 || retries[0] != 429 || retries[1] != 429 {
		t.Fatalf("OnRetry observed %v, want two 429s", retries)
	}
}

// A server that never relents exhausts the bounded budget and surfaces the
// final 429 with its error body and the attempt count.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	c := &HTTPClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	status, err := c.PostJSON(context.Background(), ts.URL, map[string]string{}, nil)
	if status != http.StatusTooManyRequests || err == nil {
		t.Fatalf("PostJSON = (%d, %v), want terminal 429 error", status, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly the 3-attempt budget", calls.Load())
	}
}

// Non-429 server errors are terminal: no retry, server message preserved.
func TestClientServerErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown model"}`))
	}))
	defer ts.Close()

	c := &HTTPClient{MaxAttempts: 5, BaseDelay: time.Millisecond}
	status, err := c.PostJSON(context.Background(), ts.URL, map[string]string{}, nil)
	if status != http.StatusBadRequest || err == nil {
		t.Fatalf("PostJSON = (%d, %v), want 400 error", status, err)
	}
	if got := err.Error(); got != "server returned 400: unknown model" {
		t.Fatalf("error = %q", got)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 400)", calls.Load())
	}
}

// Transport failures fail fast by default and retry under RetryTransport —
// the mode cluster workers use to outlive a coordinator restart.
func TestClientTransportRetry(t *testing.T) {
	// Reserve an address with no listener behind it.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	c := &HTTPClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	if status, err := c.GetJSON(context.Background(), url, nil); status != 0 || err == nil {
		t.Fatalf("fail-fast GetJSON = (%d, %v), want (0, error)", status, err)
	}

	start := time.Now()
	c2 := &HTTPClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, RetryTransport: true}
	status, err := c2.GetJSON(context.Background(), url, nil)
	if status != 0 || err == nil {
		t.Fatalf("retrying GetJSON = (%d, %v), want (0, error)", status, err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatalf("RetryTransport client gave up without backing off")
	}
}

// HardenServer fills slowloris defenses only when unset.
func TestHardenServer(t *testing.T) {
	s := HardenServer(&http.Server{})
	if s.ReadHeaderTimeout == 0 || s.IdleTimeout == 0 {
		t.Fatalf("HardenServer left timeouts unset: %+v", s)
	}
	custom := HardenServer(&http.Server{ReadHeaderTimeout: time.Second})
	if custom.ReadHeaderTimeout != time.Second {
		t.Fatalf("HardenServer overwrote an explicit ReadHeaderTimeout")
	}
}
