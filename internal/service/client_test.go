package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// A 429 with Retry-After is retried until the server relents, and the retry
// wait never undercuts the server's hint.
func TestClientRetries429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var retries []int
	c := &HTTPClient{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		OnRetry:     func(status int, _ time.Duration) { retries = append(retries, status) },
	}
	var out struct {
		OK bool `json:"ok"`
	}
	status, err := c.GetJSON(context.Background(), ts.URL, &out)
	if err != nil || status != http.StatusOK || !out.OK {
		t.Fatalf("GetJSON = (%d, %v), out=%+v; want 200 ok", status, err, out)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(retries) != 2 || retries[0] != 429 || retries[1] != 429 {
		t.Fatalf("OnRetry observed %v, want two 429s", retries)
	}
}

// A server that never relents exhausts the bounded budget and surfaces the
// final 429 with its error body and the attempt count.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	c := &HTTPClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	status, err := c.PostJSON(context.Background(), ts.URL, map[string]string{}, nil)
	if status != http.StatusTooManyRequests || err == nil {
		t.Fatalf("PostJSON = (%d, %v), want terminal 429 error", status, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly the 3-attempt budget", calls.Load())
	}
}

// Non-429 server errors are terminal: no retry, server message preserved.
func TestClientServerErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown model"}`))
	}))
	defer ts.Close()

	c := &HTTPClient{MaxAttempts: 5, BaseDelay: time.Millisecond}
	status, err := c.PostJSON(context.Background(), ts.URL, map[string]string{}, nil)
	if status != http.StatusBadRequest || err == nil {
		t.Fatalf("PostJSON = (%d, %v), want 400 error", status, err)
	}
	if got := err.Error(); got != "server returned 400: unknown model" {
		t.Fatalf("error = %q", got)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 400)", calls.Load())
	}
}

// Transport failures fail fast by default and retry under RetryTransport —
// the mode cluster workers use to outlive a coordinator restart.
func TestClientTransportRetry(t *testing.T) {
	// Reserve an address with no listener behind it.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	c := &HTTPClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	if status, err := c.GetJSON(context.Background(), url, nil); status != 0 || err == nil {
		t.Fatalf("fail-fast GetJSON = (%d, %v), want (0, error)", status, err)
	}

	start := time.Now()
	c2 := &HTTPClient{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, RetryTransport: true}
	status, err := c2.GetJSON(context.Background(), url, nil)
	if status != 0 || err == nil {
		t.Fatalf("retrying GetJSON = (%d, %v), want (0, error)", status, err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatalf("RetryTransport client gave up without backing off")
	}
}

// HardenServer fills slowloris defenses only when unset.
func TestHardenServer(t *testing.T) {
	s := HardenServer(&http.Server{})
	if s.ReadHeaderTimeout == 0 || s.IdleTimeout == 0 {
		t.Fatalf("HardenServer left timeouts unset: %+v", s)
	}
	custom := HardenServer(&http.Server{ReadHeaderTimeout: time.Second})
	if custom.ReadHeaderTimeout != time.Second {
		t.Fatalf("HardenServer overwrote an explicit ReadHeaderTimeout")
	}
}

// The backoff arithmetic, pinned directly: a Retry-After hint larger than the
// local cap must win (the server knows its own recovery horizon), and the
// exponential ramp stays within [base, max+50% jitter] otherwise.
func TestClientBackoffRetryAfterDominates(t *testing.T) {
	c := &HTTPClient{BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1}
	if d := c.backoff(1, 10*time.Second); d != 10*time.Second {
		t.Fatalf("backoff(1, 10s) = %v, want the server's 10s hint to dominate the 4ms cap", d)
	}
	// No hint: every step obeys base<<k clamped to MaxDelay, plus at most 50%.
	for attempt := 1; attempt <= 12; attempt++ {
		d := c.backoff(attempt, 0)
		if d < time.Millisecond || d > 6*time.Millisecond {
			t.Fatalf("backoff(%d, 0) = %v, want within [1ms, 4ms+50%%]", attempt, d)
		}
	}
	// A huge attempt number must not overflow into a negative or zero delay.
	if d := c.backoff(63, 0); d < time.Millisecond || d > 6*time.Millisecond {
		t.Fatalf("backoff(63, 0) = %v; shift overflow escaped the clamp", d)
	}
}

// parseRetryAfter: seconds are honored, absence and garbage (including the
// negative and non-integer forms proxies emit) all collapse to zero rather
// than stalling the client.
func TestClientParseRetryAfter(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"1.5", 0},
		{"Wed, 21 Oct 2026 07:28:00 GMT", 0},
	} {
		if got := parseRetryAfter(mk(tc.header)); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}
