package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vcache"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postVerify(t *testing.T, url string, req VerifyRequest) (*VerifyResponse, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	httpResp, err := http.Post(url+"/v1/verify", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(httpResp.Body).Decode(&eb)
		t.Fatalf("verify returned %d: %s", httpResp.StatusCode, eb.Error)
	}
	var resp VerifyResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp, httpResp
}

func memCache(t *testing.T) *vcache.Cache {
	t.Helper()
	c, err := vcache.Open(vcache.Options{MemEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// N concurrent identical requests must cost exactly one engine run: either a
// follower joins the leader's in-flight solve (singleflight), or it arrives
// after the leader finished and hits the cache. Run with -race.
func TestSingleflightConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: memCache(t), MaxQueue: 64, MaxConcurrent: 4})
	req := VerifyRequest{Model: "simplified", Prop: "Inv1_0"}

	const n = 12
	var wg sync.WaitGroup
	results := make([]*VerifyResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = postVerify(t, ts.URL, req)
		}(i)
	}
	wg.Wait()

	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("%d identical concurrent requests cost %d engine runs, want exactly 1", n, runs)
	}
	want := results[0].Results[0]
	for i, r := range results {
		if len(r.Results) != 1 {
			t.Fatalf("request %d: %d results, want 1", i, len(r.Results))
		}
		got := r.Results[0]
		if got.Outcome != want.Outcome || got.Schemas != want.Schemas ||
			got.AvgLen != want.AvgLen || got.Solver != want.Solver {
			t.Fatalf("request %d verdict differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestCacheHitOnRepeat(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: memCache(t)})
	req := VerifyRequest{Model: "simplified", Prop: "Inv2_0"}

	cold, _ := postVerify(t, ts.URL, req)
	if cold.Results[0].Cached {
		t.Fatal("first request reported as cached")
	}
	runsAfterCold := s.EngineRuns()
	warm, _ := postVerify(t, ts.URL, req)
	if !warm.Results[0].Cached {
		t.Fatal("second identical request not served from cache")
	}
	if s.EngineRuns() != runsAfterCold {
		t.Fatal("warm request triggered an engine run")
	}
	if warm.Results[0].Outcome != cold.Results[0].Outcome ||
		warm.Results[0].Schemas != cold.Results[0].Schemas ||
		warm.Results[0].Solver != cold.Results[0].Solver {
		t.Fatalf("cached verdict differs from cold verdict:\n cold %+v\n warm %+v",
			cold.Results[0], warm.Results[0])
	}
	if warm.Engine != vcache.EngineVersion {
		t.Fatalf("engine version %q, want %q", warm.Engine, vcache.EngineVersion)
	}
}

// Admission beyond MaxQueue sheds with 429 + Retry-After; draining refuses
// with 503.
func TestAdmissionSheddingAndDrain(t *testing.T) {
	s := New(Config{MaxQueue: 1})
	w1 := httptest.NewRecorder()
	release, ok := s.admit(w1)
	if !ok {
		t.Fatal("first admission refused")
	}
	w2 := httptest.NewRecorder()
	if _, ok := s.admit(w2); ok {
		t.Fatal("admission beyond MaxQueue accepted")
	}
	if w2.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429", w2.Code)
	}
	if w2.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	release()
	w3 := httptest.NewRecorder()
	if release3, ok := s.admit(w3); !ok {
		t.Fatal("admission after release refused")
	} else {
		release3()
	}

	draining := New(Config{Stop: func() bool { return true }})
	w4 := httptest.NewRecorder()
	if _, ok := draining.admit(w4); ok {
		t.Fatal("draining server admitted a request")
	}
	if w4.Code != http.StatusServiceUnavailable {
		t.Fatalf("drain status %d, want 503", w4.Code)
	}
}

// A tiny per-request deadline must cut the check via the engine's Stop hook
// and surface as a budget outcome — and budget outcomes stay out of the
// cache, so a later request with a real budget still solves.
func TestRequestDeadlineMapsToBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: memCache(t)})
	resp, _ := postVerify(t, ts.URL, VerifyRequest{Model: "simplified", TimeoutMS: 1})
	budget := 0
	for _, r := range resp.Results {
		if r.Outcome == "budget" {
			budget++
			if r.Schemas != 0 || r.AvgLen != 0 || r.Cached {
				t.Fatalf("budget row carries volatile or cached fields: %+v", r)
			}
		}
	}
	if budget == 0 {
		t.Skip("machine solved every simplified property in under 1ms; nothing to assert")
	}
	// The timed-out verdicts must not have been cached.
	full, _ := postVerify(t, ts.URL, VerifyRequest{Model: "simplified", Prop: "Inv1_0"})
	if full.Results[0].Outcome == "budget" {
		t.Fatal("untimed request returned budget")
	}
	if full.Results[0].Cached {
		t.Fatal("budget outcome leaked into the cache")
	}
	_ = s
}

func TestJobsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: memCache(t)})
	body, _ := json.Marshal(VerifyRequest{Model: "simplified", Prop: "Inv1_1"})
	httpResp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", httpResp.StatusCode)
	}
	var j job
	json.NewDecoder(httpResp.Body).Decode(&j)
	httpResp.Body.Close()
	if j.ID == "" || j.Total != 1 {
		t.Fatalf("bad job envelope: %+v", j)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := http.Get(ts.URL + "/v1/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur job
		json.NewDecoder(st.Body).Decode(&cur)
		st.Body.Close()
		if cur.State == "done" {
			break
		}
		if cur.State == "error" {
			t.Fatalf("job failed: %s", cur.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	res, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result returned %d, want 200", res.StatusCode)
	}
	var resp VerifyResponse
	json.NewDecoder(res.Body).Decode(&resp)
	if len(resp.Results) != 1 || resp.Results[0].Query != "Inv1_1" {
		t.Fatalf("bad job result: %+v", resp)
	}

	if st, _ := http.Get(ts.URL + "/v1/jobs/no-such-job"); st.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %d, want 404", st.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"both model and ta", `{"model":"simplified","ta":"x"}`},
		{"neither", `{}`},
		{"unknown model", `{"model":"nope"}`},
		{"unknown mode", `{"model":"simplified","mode":"warp"}`},
		{"unknown prop", `{"model":"simplified","prop":"NoSuchProp"}`},
		{"unknown field", `{"model":"simplified","frobnicate":1}`},
		{"garbage", `{`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestHealthzAndMetricsz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	if h["status"] != "ok" || h["engine_version"] != vcache.EngineVersion {
		t.Fatalf("bad healthz body: %v", h)
	}

	m, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	if m.StatusCode != http.StatusOK {
		t.Fatalf("metricsz returned %d", m.StatusCode)
	}
	var snap map[string]any
	if err := json.NewDecoder(m.Body).Decode(&snap); err != nil {
		t.Fatalf("metricsz not JSON: %v", err)
	}

	draining, tsd := newTestServer(t, Config{Stop: func() bool { return true }})
	_ = draining
	hd, err := http.Get(tsd.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hd.Body.Close()
	if hd.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz returned %d, want 503", hd.StatusCode)
	}
}

// The daemon report must be deterministic: rows deduped by verification key
// and sorted, so the same served set yields the same deterministic section.
func TestServerReportDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: memCache(t)})
	for _, prop := range []string{"Inv2_1", "Inv1_0", "Inv2_1", "Inv1_0"} {
		postVerify(t, ts.URL, VerifyRequest{Model: "simplified", Prop: prop})
	}
	rep := s.Report("holistic-serve", 0, false)
	qs := rep.Deterministic.Queries
	if len(qs) != 2 {
		t.Fatalf("report has %d rows, want 2 (deduped): %+v", len(qs), qs)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i-1].Query > qs[i].Query {
			t.Fatalf("report rows not sorted: %q before %q", qs[i-1].Query, qs[i].Query)
		}
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("server report failed validation: %v", err)
	}
}

func TestVerifyRequestTAInline(t *testing.T) {
	// An inline TA + LTL spec payload (the bundled strb pair, shipped as
	// text) must verify exactly like a spec file fed to the local CLI.
	taText, err := os.ReadFile(filepath.Join("..", "..", "specs", "strb.ta"))
	if err != nil {
		t.Fatal(err)
	}
	specText, err := os.ReadFile(filepath.Join("..", "..", "specs", "strb.ltl"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	resp, _ := postVerify(t, ts.URL, VerifyRequest{TA: string(taText), Spec: string(specText), Prop: "unforgeability"})
	if len(resp.Results) != 1 {
		t.Fatalf("inline TA produced %d results, want 1", len(resp.Results))
	}
	r := resp.Results[0]
	if r.Model != "st-reliable-broadcast" || r.Query != "unforgeability" {
		t.Fatalf("row labeled %s/%s, want st-reliable-broadcast/unforgeability", r.Model, r.Query)
	}
	if r.Outcome != "holds" {
		t.Fatalf("unforgeability outcome %q, want holds", r.Outcome)
	}
}
