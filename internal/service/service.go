// Package service is the HTTP serving plane of the verification stack: it
// turns the batch checker into a daemon (`holistic serve`) that answers
// spec-verification requests over a loopback or LAN socket, backed by the
// content-addressed result cache of internal/vcache.
//
// The request path is: admission (bounded queue, load-shedding with 429 +
// Retry-After beyond it) → cache lookup (internal/core.CachedCheck) →
// singleflight dedup (concurrent identical requests share one engine run) →
// engine run under a concurrency semaphore, with the per-request deadline
// mapped onto the engine's cooperative Stop/Timeout hooks. Responses carry
// exactly the deterministic fields of the obs report schema, so a remote
// verification's report is byte-identical to a local one's.
//
// Endpoints:
//
//	POST /v1/verify            synchronous verify; body: VerifyRequest JSON
//	POST /v1/jobs              submit an async job; returns {"id": ...}
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/result  job result (409 until done)
//	POST /v1/enqueue           durable queue submit (EnqueueRequest JSON)
//	GET  /v1/queue/status      queue depth/in-flight/dead-letter counters
//	GET  /v1/queue/jobs/{id}   queue job state (+ results when done)
//	GET  /v1/queue/dead        recent dead-lettered jobs with reasons
//	GET  /healthz              liveness + drain state
//	GET  /metricsz             obs registry snapshot (JSON)
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/schema"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/vcache"
)

// Metrics (observational).
var (
	mRequests   = obs.Default.Counter("service", "requests")
	mShed       = obs.Default.Counter("service", "shed")
	mEngineRuns = obs.Default.Counter("service", "engine_runs")
	mDedup      = obs.Default.Counter("service", "singleflight_shared")
	mQueueDepth = obs.Default.Gauge("service", "queue_depth")
	mRequestNS  = obs.Default.Histogram("service", "request_ns")
	mCheckNS    = obs.Default.Histogram("service", "check_ns")
)

// Config tunes the server.
type Config struct {
	// Cache backs verdict reuse (nil = every request solves from scratch).
	Cache *vcache.Cache
	// Workers is the schema-enumeration worker budget per engine run
	// (0 = sequential). Verdicts are deterministic at any value.
	Workers int
	// MaxQueue bounds admitted-but-unfinished requests; beyond it requests
	// are shed with 429 + Retry-After (default 64).
	MaxQueue int
	// MaxConcurrent bounds engine runs in flight (default 2): verification
	// is CPU-bound, so admitted requests queue on this semaphore.
	MaxConcurrent int
	// RequestTimeout caps one request's verification wall clock (0 = none);
	// a client-supplied timeout_ms may tighten but never extend it.
	RequestTimeout time.Duration
	// Stop, when set, marks the process as draining: new requests are
	// rejected with 503 while in-flight ones finish (SIGTERM wiring).
	Stop func() bool
	// Logf receives one line per notable event (default: silent).
	Logf func(format string, args ...any)

	// QueueDir, when set, enables the durable ingestion plane: POST
	// /v1/enqueue journals jobs into a WAL-backed internal/queue under this
	// directory and a consumer pool drains them through the verify path. An
	// unusable directory degrades to the synchronous path instead of
	// failing startup.
	QueueDir string
	// QueueConsumers sizes the consumer pool (default 2).
	QueueConsumers int
	// QueueMaxDepth / QueueTenantDepth / QueueTenantWeights /
	// QueueMaxAttempts / QueueSeed pass through to queue.Config.
	QueueMaxDepth      int
	QueueTenantDepth   int
	QueueTenantWeights map[string]int
	QueueMaxAttempts   int
	QueueSeed          int64
	// QueuePaused starts the consumer pool held (Server.Queue().Resume()
	// releases it) — loadgen uses it to build a backlog deterministically.
	QueuePaused bool
	// QueueFailProp, when non-empty, makes queue jobs for that property fail
	// as transient errors — the documented fault-injection hook behind
	// `serve -queue-fail-prop`, used by the dead-letter smoke test.
	QueueFailProp string
	// QueueOnTerminal observes terminal queue transitions (benchmarks).
	QueueOnTerminal func(j queue.Job, st queue.State)
}

// VerifyRequest is the POST /v1/verify and POST /v1/jobs payload. Exactly
// one of Model (bundled) and TA (textual automaton, with Spec holding the
// LTL property file) must be set.
type VerifyRequest struct {
	Model string `json:"model,omitempty"`
	TA    string `json:"ta,omitempty"`
	Spec  string `json:"spec,omitempty"`
	// Prop restricts the check to one named property (default: all).
	Prop string `json:"prop,omitempty"`
	// Mode is "staged" (default) or "full".
	Mode string `json:"mode,omitempty"`
	// TimeoutMS bounds each property check; capped by the server's
	// RequestTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryResult is one property verdict. The deterministic fields (model,
// query, mode, outcome, schemas, avg_len, solver) carry exactly the obs
// report schema values — budget rows arrive with volatile fields zeroed —
// so clients can reconstruct a report whose deterministic section is
// byte-identical to a local run's.
type QueryResult struct {
	Model   string            `json:"model"`
	Query   string            `json:"query"`
	Mode    string            `json:"mode"`
	Outcome string            `json:"outcome"`
	Schemas int               `json:"schemas"`
	AvgLen  float64           `json:"avg_len"`
	Solver  obs.SolverMetrics `json:"solver"`
	// Cached marks a verdict served from the result cache; Shared marks one
	// that joined a concurrent identical run. Observational.
	Cached bool `json:"cached,omitempty"`
	Shared bool `json:"shared,omitempty"`
	// ElapsedNS is this server's wall clock for the check. Observational.
	ElapsedNS int64 `json:"elapsed_ns"`
	// CEText is the formatted counterexample when Outcome == "violated".
	CEText string `json:"ce_text,omitempty"`
}

// VerifyResponse is the /v1/verify response body.
type VerifyResponse struct {
	Engine    string        `json:"engine_version"`
	Results   []QueryResult `json:"results"`
	ElapsedNS int64         `json:"elapsed_ns"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

// Server handles the verification endpoints. Create with New, mount via
// Handler.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	sem   chan struct{}
	group *flightGroup

	admitted atomic.Int64

	jobsMu  sync.Mutex
	jobs    map[string]*job
	jobSeq  int
	started time.Time

	// engineRuns counts real engine invocations (not cache hits, not
	// singleflight followers); the race test pins it to exactly one for N
	// concurrent identical requests.
	engineRuns atomic.Int64

	// reportMu guards the deterministic rows accumulated for the drain-time
	// obs report: one row per unique verification key served, in insertion
	// order replaced by sorted order at flush.
	reportMu   sync.Mutex
	reportRows map[string]obs.QueryMetrics

	// queue is the durable ingestion plane (nil = disabled or degraded;
	// queueErr records why). qresults is the bounded ring of completed
	// queue-job responses.
	queue          *queue.Queue
	queueErr       error
	queueConsumers int
	qmu            sync.Mutex
	qresults       map[string]*VerifyResponse
	qring          []string
	qnext          int
}

type job struct {
	ID      string    `json:"id"`
	State   string    `json:"state"` // queued | running | done | error
	Created time.Time `json:"created"`
	Total   int       `json:"total_queries"`
	Done    int       `json:"done_queries"`
	Err     string    `json:"error,omitempty"`

	resp *VerifyResponse
}

// New builds a server.
func New(cfg Config) *Server {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Stop == nil {
		cfg.Stop = func() bool { return false }
	}
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		group:      newFlightGroup(),
		jobs:       make(map[string]*job),
		started:    time.Now(),
		reportRows: make(map[string]obs.QueryMetrics),
		qresults:   make(map[string]*VerifyResponse),
	}
	s.openQueue()
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("POST /v1/enqueue", s.handleEnqueue)
	s.mux.HandleFunc("GET /v1/queue/status", s.handleQueueStatus)
	s.mux.HandleFunc("GET /v1/queue/jobs/{id}", s.handleQueueJob)
	s.mux.HandleFunc("GET /v1/queue/dead", s.handleQueueDead)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// EngineRuns reports the number of real engine invocations so far.
func (s *Server) EngineRuns() int64 { return s.engineRuns.Load() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Unreachable for the plain structs served here.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// admit reserves an admission slot, shedding with 429 beyond MaxQueue and
// refusing with 503 while draining. The returned release func must be
// called exactly once; ok=false means the response has been written.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.cfg.Stop() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return nil, false
	}
	depth := s.admitted.Add(1)
	mQueueDepth.Set(depth)
	if depth > int64(s.cfg.MaxQueue) {
		s.admitted.Add(-1)
		mQueueDepth.Set(s.admitted.Load())
		mShed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "admission queue full (%d in flight); retry later", s.cfg.MaxQueue)
		return nil, false
	}
	return func() {
		mQueueDepth.Set(s.admitted.Add(-1))
	}, true
}

func decodeRequest(w http.ResponseWriter, r *http.Request) (*VerifyRequest, bool) {
	var req VerifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return nil, false
	}
	return &req, true
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	resp, status, err := s.verify(r.Context(), req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// verify runs one request end to end. It returns an HTTP status alongside
// any error so handlers map failures consistently.
func (s *Server) verify(ctx context.Context, req *VerifyRequest) (*VerifyResponse, int, error) {
	start := time.Now()
	defer func() { mRequestNS.Observe(time.Since(start).Nanoseconds()) }()

	a, label, queries, err := resolveRequest(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	mode := schema.Staged
	switch req.Mode {
	case "", "staged":
	case "full":
		mode = schema.FullEnumeration
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown mode %q (want staged or full)", req.Mode)
	}
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		t := time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout == 0 || t < timeout {
			timeout = t
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	resp := &VerifyResponse{Engine: vcache.EngineVersion}
	for i := range queries {
		qr, err := s.checkOne(ctx, label, a, &queries[i], mode, timeout)
		if err != nil {
			return nil, http.StatusInternalServerError, fmt.Errorf("checking %s/%s: %w", label, queries[i].Name, err)
		}
		resp.Results = append(resp.Results, qr)
	}
	resp.ElapsedNS = time.Since(start).Nanoseconds()
	return resp, http.StatusOK, nil
}

// checkOne decides one property: cache first, then singleflight, then a real
// engine run under the concurrency semaphore with the request deadline
// mapped onto the engine's Stop hook.
func (s *Server) checkOne(ctx context.Context, label string, a *ta.TA, q *spec.Query, mode schema.Mode, timeout time.Duration) (QueryResult, error) {
	start := time.Now()
	stop := func() bool {
		if s.cfg.Stop() {
			return true
		}
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	engine, err := schema.New(a, schema.Options{
		Mode:    mode,
		Timeout: timeout,
		Stop:    stop,
		Workers: s.cfg.Workers,
	})
	if err != nil {
		return QueryResult{}, err
	}
	key := vcache.Key(engine.TA(), q, vcache.ConfigOf(engine.Opts()), vcache.EngineVersion)

	var cached, shared bool
	var res schema.Result
	if s.cfg.Cache != nil {
		// Fast path outside the singleflight: a warm hit never queues.
		if ent, ok := s.cfg.Cache.Get(key); ok {
			if r, cerr := ent.ToResult(engine.TA(), q); cerr == nil {
				res, cached = r, true
			}
		}
	}
	if !cached {
		res, shared, err = s.group.do(key, func() (schema.Result, error) {
			// The semaphore bounds concurrent engine runs; an expired
			// deadline while queuing surfaces as a budget outcome, exactly
			// like one that fires mid-solve via the Stop hook.
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				return schema.Result{Query: q.Name, Mode: mode, Outcome: spec.Budget}, nil
			}
			defer func() { <-s.sem }()
			s.engineRuns.Add(1)
			mEngineRuns.Inc()
			r, _, cerr := core.CachedCheck(s.cfg.Cache, engine, q)
			return r, cerr
		})
		if err != nil {
			return QueryResult{}, err
		}
		if shared {
			mDedup.Inc()
		}
	}
	elapsed := time.Since(start)
	mCheckNS.Observe(elapsed.Nanoseconds())

	qr := QueryResult{
		Model:   label,
		Query:   res.Query,
		Mode:    res.Mode.String(),
		Outcome: vcache.OutcomeLabel(res.Outcome),
		Schemas: res.Schemas,
		AvgLen:  res.AvgLen,
		Solver: obs.SolverMetrics{
			LPChecks:   int64(res.Solver.LPChecks),
			Pivots:     int64(res.Solver.Pivots),
			Rebuilds:   int64(res.Solver.Rebuilds),
			BBNodes:    int64(res.Solver.BBNodes),
			CaseSplits: int64(res.Solver.CaseSplit),
		},
		Cached:    cached,
		Shared:    shared,
		ElapsedNS: elapsed.Nanoseconds(),
	}
	if res.Outcome == spec.Budget {
		// Zero the volatile fields exactly as local reports do: a timeout
		// cuts the search at a wall-clock-dependent point.
		qr.Schemas, qr.AvgLen, qr.Solver = 0, 0, obs.SolverMetrics{}
	}
	if res.CE != nil {
		qr.CEText = res.CE.Format()
	}
	s.recordReportRow(key, qr)
	return qr, nil
}

// recordReportRow accumulates one deterministic report row per unique
// verification key, for the drain-time obs report.
func (s *Server) recordReportRow(key string, qr QueryResult) {
	s.reportMu.Lock()
	defer s.reportMu.Unlock()
	if len(s.reportRows) >= 10_000 {
		// Unbounded daemons must not grow the report forever; the registry
		// snapshot still covers totals.
		return
	}
	s.reportRows[key] = obs.QueryMetrics{
		Model: qr.Model, Query: qr.Query, Mode: qr.Mode, Outcome: qr.Outcome,
		Schemas: qr.Schemas, AvgLen: qr.AvgLen, Solver: qr.Solver,
	}
}

// Report assembles the daemon's obs report: one deterministic row per unique
// verification served (sorted, so two servers that served the same set of
// keys flush byte-identical deterministic sections) plus the registry
// snapshot.
func (s *Server) Report(tool string, workers int, interrupted bool) *obs.Report {
	s.reportMu.Lock()
	keys := make([]string, 0, len(s.reportRows))
	for k := range s.reportRows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := s.reportRows[keys[i]], s.reportRows[keys[j]]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		return keys[i] < keys[j]
	})
	rep := &obs.Report{Tool: tool}
	for _, k := range keys {
		rep.Deterministic.Queries = append(rep.Deterministic.Queries, s.reportRows[k])
	}
	s.reportMu.Unlock()
	rep.Observational.Workers = workers
	rep.Observational.Interrupted = interrupted
	rep.Observational.Registry = obs.Default.Snapshot()
	return rep
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	release, ok := s.admit(w)
	if !ok {
		return
	}
	req, ok := decodeRequest(w, r)
	if !ok {
		release()
		return
	}
	// Validate before accepting so submit errors surface synchronously.
	_, _, queries, err := resolveRequest(req)
	if err != nil {
		release()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.jobsMu.Lock()
	s.jobSeq++
	j := &job{
		ID:      fmt.Sprintf("job-%06d", s.jobSeq),
		State:   "queued",
		Created: time.Now().UTC(),
		Total:   len(queries),
	}
	s.jobs[j.ID] = j
	envelope := *j
	s.jobsMu.Unlock()

	go func() {
		defer release()
		s.setJobState(j, "running")
		// The job holds its admission slot for its whole life, so queued
		// jobs count against MaxQueue exactly like synchronous requests.
		resp, _, err := s.verify(context.Background(), req)
		s.jobsMu.Lock()
		defer s.jobsMu.Unlock()
		if err != nil {
			j.State, j.Err = "error", err.Error()
			return
		}
		j.State, j.resp, j.Done = "done", resp, len(resp.Results)
	}()
	writeJSON(w, http.StatusAccepted, envelope)
}

func (s *Server) setJobState(j *job, state string) {
	s.jobsMu.Lock()
	j.State = state
	s.jobsMu.Unlock()
}

func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	s.jobsMu.Lock()
	cp := *j
	s.jobsMu.Unlock()
	cp.resp = nil
	writeJSON(w, http.StatusOK, cp)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	s.jobsMu.Lock()
	state, resp, jerr := j.State, j.resp, j.Err
	s.jobsMu.Unlock()
	switch state {
	case "done":
		writeJSON(w, http.StatusOK, resp)
	case "error":
		writeError(w, http.StatusInternalServerError, "%s", jerr)
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job %s is %s; retry later", j.ID, state)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.cfg.Stop() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"engine_version": vcache.EngineVersion,
		"uptime_ms":      time.Since(s.started).Milliseconds(),
		"queue_depth":    s.admitted.Load(),
		"max_queue":      s.cfg.MaxQueue,
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.Default.Snapshot())
}
