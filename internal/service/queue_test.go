package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vcache"
)

func postEnqueue(t *testing.T, url string, req EnqueueRequest) (EnqueueResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	httpResp, err := http.Post(url+"/v1/enqueue", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var out EnqueueResponse
	if httpResp.StatusCode == http.StatusOK || httpResp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, httpResp.StatusCode
}

func pollQueueJob(t *testing.T, url, id string) EnqueueResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		httpResp, err := http.Get(url + "/v1/queue/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var out EnqueueResponse
		err = json.NewDecoder(httpResp.Body).Decode(&out)
		httpResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if out.State == "done" || out.State == "dead" {
			return out
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("queue job %s never reached a terminal state", id)
	return EnqueueResponse{}
}

// sameVerdicts compares the deterministic slice of two result sets — what
// must be identical between a queued and a synchronous run.
func sameVerdicts(t *testing.T, got, want *VerifyResponse) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("missing results: got=%v want=%v", got != nil, want != nil)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Model != w.Model || g.Query != w.Query || g.Mode != w.Mode || g.Outcome != w.Outcome ||
			g.Schemas != w.Schemas || g.AvgLen != w.AvgLen || g.Solver != w.Solver || g.CEText != w.CEText {
			t.Errorf("result %d diverges:\nqueued %+v\nsync   %+v", i, g, w)
		}
	}
}

func TestEnqueueDrainsToSameVerdictAsSync(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: memCache(t), QueueDir: t.TempDir()})
	defer s.Close()
	req := EnqueueRequest{
		VerifyRequest: VerifyRequest{Model: "simplified", Prop: "Inv1_0"},
		Tenant:        "alpha",
	}
	out, code := postEnqueue(t, ts.URL, req)
	if code != http.StatusAccepted || out.ID == "" {
		t.Fatalf("enqueue: code=%d out=%+v", code, out)
	}
	final := pollQueueJob(t, ts.URL, out.ID)
	if final.State != "done" {
		t.Fatalf("job ended %q", final.State)
	}
	sync, _ := postVerify(t, ts.URL, req.VerifyRequest)
	sameVerdicts(t, final.Results, sync)
}

func TestEnqueueCacheDedupShortCircuits(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: memCache(t), QueueDir: t.TempDir()})
	defer s.Close()
	req := EnqueueRequest{VerifyRequest: VerifyRequest{Model: "simplified", Prop: "Inv1_0"}}
	// Warm the cache synchronously, then enqueue the same request: every
	// verdict is content-addressed already, so no backlog is spent.
	postVerify(t, ts.URL, req.VerifyRequest)
	out, code := postEnqueue(t, ts.URL, req)
	if code != http.StatusOK || out.State != "done" || out.Results == nil {
		t.Fatalf("warm enqueue not short-circuited: code=%d out=%+v", code, out)
	}
	if out.ID != "" {
		t.Errorf("short-circuited enqueue minted a job ID %q", out.ID)
	}
	for _, r := range out.Results.Results {
		if !r.Cached {
			t.Errorf("short-circuit result %s/%s not served from cache", r.Model, r.Query)
		}
	}
	// Force bypasses the short-circuit: a real queue job is minted.
	req.Force = true
	req.Tag = "forced-1"
	out, code = postEnqueue(t, ts.URL, req)
	if code != http.StatusAccepted || out.ID == "" {
		t.Fatalf("forced enqueue: code=%d out=%+v", code, out)
	}
	if final := pollQueueJob(t, ts.URL, out.ID); final.State != "done" {
		t.Fatalf("forced job ended %q", final.State)
	}
}

func TestEnqueueDegradesWhenQueueDirUnusable(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The queue directory sits under a regular file: journal open fails, the
	// server must come up degraded and serve enqueues synchronously.
	s, ts := newTestServer(t, Config{Cache: memCache(t), QueueDir: filepath.Join(blocker, "q")})
	defer s.Close()
	if s.Queue() != nil {
		t.Fatal("queue opened under a file path")
	}
	out, code := postEnqueue(t, ts.URL, EnqueueRequest{
		VerifyRequest: VerifyRequest{Model: "simplified", Prop: "Inv1_0"},
	})
	if code != http.StatusOK || out.State != "done" || out.Degraded == "" || out.Results == nil {
		t.Fatalf("degraded enqueue: code=%d out=%+v", code, out)
	}

	var status queueStatusBody
	httpResp, err := http.Get(ts.URL + "/v1/queue/status")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if err := json.NewDecoder(httpResp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Enabled || status.Degraded == "" {
		t.Errorf("queue status %+v, want disabled with a degraded reason", status)
	}
}

// TestEnqueueRestartResumesBacklog is the crash-safe-resume contract at the
// service layer: jobs accepted by one daemon incarnation and never run are
// re-run by the next one, with verdicts identical to a synchronous check.
func TestEnqueueRestartResumesBacklog(t *testing.T) {
	queueDir := t.TempDir()
	cacheDir := t.TempDir()
	openCache := func() *vcache.Cache {
		c, err := vcache.Open(vcache.Options{Dir: cacheDir, MemEntries: 64})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Incarnation 1: paused consumers, so accepted jobs stay unfinished.
	s1, ts1 := newTestServer(t, Config{Cache: openCache(), QueueDir: queueDir, QueuePaused: true})
	var ids []string
	for i := 0; i < 3; i++ {
		out, code := postEnqueue(t, ts1.URL, EnqueueRequest{
			VerifyRequest: VerifyRequest{Model: "simplified", Prop: "Inv1_0"},
			Tenant:        "alpha",
			Tag:           fmt.Sprintf("restart-%d", i),
			Force:         true,
		})
		if code != http.StatusAccepted {
			t.Fatalf("enqueue %d: code=%d out=%+v", i, code, out)
		}
		ids = append(ids, out.ID)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("close incarnation 1: %v", err)
	}
	ts1.Close()

	// Incarnation 2 on the same directories replays and drains the backlog.
	s2, ts2 := newTestServer(t, Config{Cache: openCache(), QueueDir: queueDir})
	defer s2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s2.Queue().WaitIdle(ctx); err != nil {
		t.Fatalf("drain after restart: %v", err)
	}
	sync, _ := postVerify(t, ts2.URL, VerifyRequest{Model: "simplified", Prop: "Inv1_0"})
	for _, id := range ids {
		final := pollQueueJob(t, ts2.URL, id)
		if final.State != "done" {
			t.Fatalf("job %s ended %q after restart", id, final.State)
		}
		sameVerdicts(t, final.Results, sync)
	}
}

func TestEnqueueTenantDepthCap(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Cache:            memCache(t),
		QueueDir:         t.TempDir(),
		QueuePaused:      true, // nothing drains: depth only grows
		QueueTenantDepth: 2,
	})
	defer s.Close()
	mk := func(tenant, tag string) (EnqueueResponse, int) {
		return postEnqueue(t, ts.URL, EnqueueRequest{
			VerifyRequest: VerifyRequest{Model: "simplified", Prop: "Inv1_0"},
			Tenant:        tenant, Tag: tag, Force: true,
		})
	}
	for i := 0; i < 2; i++ {
		if _, code := mk("greedy", fmt.Sprintf("g%d", i)); code != http.StatusAccepted {
			t.Fatalf("enqueue %d: code=%d", i, code)
		}
	}
	if _, code := mk("greedy", "g2"); code != http.StatusTooManyRequests {
		t.Errorf("over-cap enqueue: code=%d, want 429", code)
	}
	if _, code := mk("modest", "m0"); code != http.StatusAccepted {
		t.Errorf("other tenant blocked by greedy's cap: code=%d", code)
	}
}

func TestMetricszExposesQueueGauges(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: memCache(t), QueueDir: t.TempDir(), QueuePaused: true})
	defer s.Close()
	out, code := postEnqueue(t, ts.URL, EnqueueRequest{
		VerifyRequest: VerifyRequest{Model: "simplified", Prop: "Inv1_0"},
		Tenant:        "metrics-tenant", Tag: "m0", Force: true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("enqueue: code=%d out=%+v", code, out)
	}
	httpResp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(httpResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Gauges["queue"]; !ok {
		t.Errorf("no queue gauges in /metricsz: %v", snap.Gauges)
	}
	if got := snap.Gauges["queue_tenant"]["metrics-tenant"]; got < 1 {
		t.Errorf("per-tenant gauge = %d, want >= 1 (gauges: %v)", got, snap.Gauges["queue_tenant"])
	}
	if _, ok := snap.Counters["queue"]["enqueued"]; !ok {
		t.Errorf("no queue counters in /metricsz: %v", snap.Counters)
	}
}
