package service

import (
	"fmt"

	"repro/internal/ltl"
	"repro/internal/models"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/taformat"
)

// BuiltinModel resolves a bundled model name to its automaton and property
// set — the single registry shared by the holistic CLI and the serving
// plane, so a remote verification of "simplified" runs exactly the queries a
// local one does.
func BuiltinModel(name string) (*ta.TA, []spec.Query, error) {
	switch name {
	case "bv", "bvbroadcast":
		a := models.BVBroadcast()
		qs, err := models.BVQueries(a)
		return a, qs, err
	case "naive":
		a := models.NaiveConsensus()
		qs, err := models.NaiveQueries(a)
		return a, qs, err
	case "simplified":
		a := models.SimplifiedConsensus()
		qs, err := models.SimplifiedQueries(a)
		return a, qs, err
	case "strb":
		a := models.STReliableBroadcast()
		qs, err := models.STRBQueries(a)
		return a, qs, err
	case "bosco":
		a := models.Bosco()
		qs, err := models.BoscoQueries(a)
		return a, qs, err
	case "sba":
		a := models.SBA()
		qs, err := models.SBAQueries(a)
		return a, qs, err
	default:
		return nil, nil, fmt.Errorf("unknown model %q (want bv, naive, simplified, strb, bosco or sba)", name)
	}
}

// resolveRequest turns a VerifyRequest into the automaton, model label and
// query list to check. Exactly one of Model and TA must be set; TA requires
// Spec (the LTL property file text to compile against it).
func resolveRequest(req *VerifyRequest) (*ta.TA, string, []spec.Query, error) {
	var (
		a       *ta.TA
		queries []spec.Query
		label   string
		err     error
	)
	switch {
	case req.Model != "" && req.TA != "":
		return nil, "", nil, fmt.Errorf("request sets both model and ta; pick one")
	case req.Model != "":
		label = req.Model
		a, queries, err = BuiltinModel(req.Model)
		if err != nil {
			return nil, "", nil, err
		}
	case req.TA != "":
		if req.Spec == "" {
			return nil, "", nil, fmt.Errorf("a ta payload requires a spec payload with the properties to check")
		}
		a, err = taformat.Parse(req.TA)
		if err != nil {
			return nil, "", nil, fmt.Errorf("parsing ta: %w", err)
		}
		label = a.Name
		pf, perr := ltl.ParseFile(req.Spec)
		if perr != nil {
			return nil, "", nil, fmt.Errorf("parsing spec: %w", perr)
		}
		queries, err = ltl.CompileFile(pf, a)
		if err != nil {
			return nil, "", nil, fmt.Errorf("compiling spec: %w", err)
		}
	default:
		return nil, "", nil, fmt.Errorf("request names no model and carries no ta")
	}
	if req.Prop != "" {
		var filtered []spec.Query
		for i := range queries {
			if queries[i].Name == req.Prop {
				filtered = append(filtered, queries[i])
			}
		}
		if len(filtered) == 0 {
			return nil, "", nil, fmt.Errorf("no property %q in model %s", req.Prop, label)
		}
		queries = filtered
	}
	return a, label, queries, nil
}
