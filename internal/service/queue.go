// The durable ingestion plane: POST /v1/enqueue accepts verification jobs
// into the WAL-backed internal/queue instead of shedding overload with 429.
// The synchronous path is still the fast path — a request whose every
// property is already in the vcache is answered inline, and when the queue
// directory is unusable (unwritable disk, full volume) the whole plane
// degrades to the PR-5 synchronous admission path rather than dying.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/queue"
	"repro/internal/schema"
	"repro/internal/vcache"
)

// EnqueueRequest is the POST /v1/enqueue payload: a VerifyRequest plus queue
// addressing. Jobs are content-addressed over (tenant, canonical payload
// JSON), so identical submissions collapse; Tag makes otherwise-identical
// requests distinct, and Force skips the pre-enqueue cache short-circuit
// (the queued run itself still reuses the cache).
type EnqueueRequest struct {
	VerifyRequest
	Tenant string `json:"tenant,omitempty"`
	Tag    string `json:"tag,omitempty"`
	Force  bool   `json:"force,omitempty"`
}

// EnqueueResponse answers /v1/enqueue and /v1/queue/jobs/{id}.
type EnqueueResponse struct {
	ID    string `json:"id,omitempty"`
	State string `json:"state"`
	// Duplicate marks an enqueue that collapsed onto an existing job.
	Duplicate bool `json:"duplicate,omitempty"`
	// Degraded carries the reason when the queue is unavailable and the
	// request was served through the synchronous fallback path instead.
	Degraded string `json:"degraded,omitempty"`
	// Reason is the dead-letter failure reason for state "dead".
	Reason string `json:"reason,omitempty"`
	// Results is set when the job's verdicts are available (state "done").
	Results *VerifyResponse `json:"results,omitempty"`
}

// queueStatusBody answers /v1/queue/status.
type queueStatusBody struct {
	Enabled   bool         `json:"enabled"`
	Degraded  string       `json:"degraded,omitempty"`
	Consumers int          `json:"consumers,omitempty"`
	Queue     queue.Status `json:"queue"`
}

// openQueue wires the durable queue under the server, or records why it
// could not and leaves the synchronous path as the fallback.
func (s *Server) openQueue() {
	if s.cfg.QueueDir == "" {
		return
	}
	consumers := s.cfg.QueueConsumers
	if consumers == 0 {
		consumers = 2
	}
	q, err := queue.Open(queue.Config{
		Dir:           s.cfg.QueueDir,
		Consumers:     consumers,
		StartPaused:   s.cfg.QueuePaused,
		MaxAttempts:   s.cfg.QueueMaxAttempts,
		MaxDepth:      s.cfg.QueueMaxDepth,
		TenantDepth:   s.cfg.QueueTenantDepth,
		TenantWeights: s.cfg.QueueTenantWeights,
		Seed:          s.cfg.QueueSeed,
		Handler:       s.runQueueJob,
		OnTerminal:    s.cfg.QueueOnTerminal,
		Logf:          s.cfg.Logf,
	})
	if err != nil {
		s.queueErr = err
		s.cfg.Logf("service: queue disabled, degrading to the synchronous path: %v", err)
		return
	}
	s.queue = q
	s.queueConsumers = consumers
	s.cfg.Logf("service: durable queue at %s (%d consumers, depth %d)", s.cfg.QueueDir, consumers, q.Status().Depth)
}

// Queue exposes the underlying queue (nil when disabled or degraded) for
// in-process drivers like loadgen's backlog benchmark.
func (s *Server) Queue() *queue.Queue { return s.queue }

// Close releases the server's durable state: the queue drains its running
// jobs, journals their outcomes and compacts. Safe to call when the queue is
// disabled, and idempotent.
func (s *Server) Close() error {
	if s.queue == nil {
		return nil
	}
	return s.queue.Close()
}

// runQueueJob is the queue consumer handler: decode the stored enqueue
// request and run it through the same verify path the synchronous endpoint
// uses (cache, singleflight, semaphore, report rows — so a drained daemon's
// deterministic report is byte-identical whether jobs arrived queued or
// synchronous). Error classification is the queue's contract: undecodable
// payloads and 400-class requests are Permanent (poison — retrying cannot
// fix the input), a drain-interrupted run is ErrRequeue (no attempt burned,
// no partial verdict terminalized), everything else is transient.
func (s *Server) runQueueJob(ctx context.Context, j queue.Job) error {
	var req EnqueueRequest
	if err := json.Unmarshal(j.Payload, &req); err != nil {
		return queue.Permanent(fmt.Errorf("undecodable job payload: %w", err))
	}
	if fp := s.cfg.QueueFailProp; fp != "" && req.Prop == fp {
		// Documented fault-injection hook (serve -queue-fail-prop): the
		// verify.sh smoke leg uses it to drive a real job into the
		// dead-letter log without needing a genuinely broken spec.
		return fmt.Errorf("fault injection: configured to fail prop %q", fp)
	}
	if s.cfg.Stop() {
		return queue.ErrRequeue
	}
	resp, status, err := s.verify(ctx, &req.VerifyRequest)
	if err != nil {
		if status == http.StatusBadRequest {
			return queue.Permanent(err)
		}
		return err
	}
	if s.cfg.Stop() {
		// A drain that fired mid-run cut the engine off via the Stop hook;
		// the budget rows it produced are not this job's real verdict.
		return queue.ErrRequeue
	}
	s.storeQueueResult(j.ID, resp)
	return nil
}

// storeQueueResult keeps completed job responses in a bounded ring so
// /v1/queue/jobs/{id} can serve verdicts without re-verifying; evicted
// entries cost a follower a cache-backed re-run, not a recompute.
func (s *Server) storeQueueResult(id string, resp *VerifyResponse) {
	const keep = 4096
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if _, ok := s.qresults[id]; ok {
		s.qresults[id] = resp
		return
	}
	if len(s.qring) < keep {
		s.qring = append(s.qring, id)
	} else {
		delete(s.qresults, s.qring[s.qnext])
		s.qring[s.qnext] = id
		s.qnext = (s.qnext + 1) % keep
	}
	s.qresults[id] = resp
}

func (s *Server) queueResult(id string) (*VerifyResponse, bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	resp, ok := s.qresults[id]
	return resp, ok
}

// allCached reports whether every property of the request already has a
// cached verdict — the pre-enqueue dedup against vcache canonical hashes:
// such a request is answered synchronously (pure cache reads) instead of
// occupying backlog space.
func (s *Server) allCached(req *VerifyRequest) bool {
	if s.cfg.Cache == nil {
		return false
	}
	a, _, queries, err := resolveRequest(req)
	if err != nil {
		return false
	}
	mode := schema.Staged
	if req.Mode == "full" {
		mode = schema.FullEnumeration
	}
	for i := range queries {
		engine, err := schema.New(a, schema.Options{Mode: mode, Workers: s.cfg.Workers})
		if err != nil {
			return false
		}
		key := vcache.Key(engine.TA(), &queries[i], vcache.ConfigOf(engine.Opts()), vcache.EngineVersion)
		if _, ok := s.cfg.Cache.Get(key); !ok {
			return false
		}
	}
	return true
}

// serveSyncFallback runs an enqueue request through the synchronous
// admission path — the graceful-degradation route when the queue is broken
// or disabled. The PR-5 contract applies: bounded admission, 429 beyond it.
func (s *Server) serveSyncFallback(w http.ResponseWriter, r *http.Request, req *EnqueueRequest, reason string) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	resp, status, err := s.verify(r.Context(), &req.VerifyRequest)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EnqueueResponse{State: "done", Degraded: reason, Results: resp})
}

func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	if s.cfg.Stop() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req EnqueueRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if _, _, _, err := resolveRequest(&req.VerifyRequest); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !req.Force && s.allCached(&req.VerifyRequest) {
		// Every verdict is already content-addressed in the cache: answer
		// now, spend no backlog.
		resp, status, err := s.verify(r.Context(), &req.VerifyRequest)
		if err != nil {
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, EnqueueResponse{State: "done", Results: resp})
		return
	}
	if s.queue == nil {
		reason := "queue disabled"
		if s.queueErr != nil {
			reason = fmt.Sprintf("queue unavailable: %v", s.queueErr)
		}
		s.serveSyncFallback(w, r, &req, reason)
		return
	}

	payload, err := json.Marshal(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "encoding job payload: %v", err)
		return
	}
	id, st, dup, err := s.queue.Enqueue(req.Tenant, payload)
	switch {
	case err == nil:
	case errors.Is(err, queue.ErrQueueFull), errors.Is(err, queue.ErrTenantFull):
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	default:
		// The durable plane failed mid-life (killed, closed, broken disk):
		// degrade to the synchronous path rather than losing the request.
		s.serveSyncFallback(w, r, &req, fmt.Sprintf("queue unavailable: %v", err))
		return
	}
	out := EnqueueResponse{ID: id, State: st.String(), Duplicate: dup}
	code := http.StatusAccepted
	if st == queue.StateDone {
		code = http.StatusOK
		if resp, ok := s.queueResult(id); ok {
			out.Results = resp
		}
	}
	writeJSON(w, code, out)
}

func (s *Server) handleQueueStatus(w http.ResponseWriter, r *http.Request) {
	body := queueStatusBody{Enabled: s.queue != nil, Consumers: s.queueConsumers}
	if s.queueErr != nil {
		body.Degraded = s.queueErr.Error()
	}
	if s.queue != nil {
		body.Queue = s.queue.Status()
		if body.Queue.Broken != "" {
			body.Degraded = body.Queue.Broken
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleQueueJob(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		writeError(w, http.StatusNotFound, "queue disabled")
		return
	}
	id := r.PathValue("id")
	st, ok := s.queue.JobState(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no queue job %q", id)
		return
	}
	out := EnqueueResponse{ID: id, State: st.String()}
	switch st {
	case queue.StateDone:
		if resp, ok := s.queueResult(id); ok {
			out.Results = resp
		}
	case queue.StateDead:
		for _, dl := range s.queue.DeadLetters() {
			if dl.ID == id {
				out.Reason = dl.Reason
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// deadLetterBody renders one quarantined job; the payload is the original
// enqueue request JSON, embedded verbatim for forensics.
type deadLetterBody struct {
	ID       string          `json:"id"`
	Tenant   string          `json:"tenant"`
	Reason   string          `json:"reason"`
	Attempts int             `json:"attempts"`
	Request  json.RawMessage `json:"request,omitempty"`
}

func (s *Server) handleQueueDead(w http.ResponseWriter, r *http.Request) {
	if s.queue == nil {
		writeError(w, http.StatusNotFound, "queue disabled")
		return
	}
	dls := s.queue.DeadLetters()
	out := struct {
		Dead []deadLetterBody `json:"dead"`
	}{Dead: []deadLetterBody{}}
	for _, dl := range dls {
		out.Dead = append(out.Dead, deadLetterBody{
			ID: dl.ID, Tenant: dl.Tenant, Reason: dl.Reason, Attempts: dl.Attempts,
			Request: json.RawMessage(dl.Payload),
		})
	}
	writeJSON(w, http.StatusOK, out)
}
