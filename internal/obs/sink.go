package obs

import (
	"fmt"
	"os"
	"time"
)

// Sink owns the CLI-side lifecycle of the observability outputs. Opening
// validates every destination up front — a bad -trace or -report path, or a
// -pprof port that is already bound, fails before hours of verification are
// spent — and Flush writes the final artifacts on every exit path,
// including a graceful interrupt, so a stopped campaign still leaves a
// valid partial report behind (never a zero-byte JSON file).
type Sink struct {
	// Tracer is non-nil iff a trace path was given; thread it into the
	// engines. A nil Sink has a nil Tracer, so callers need no guards.
	Tracer *Tracer

	tracePath  string
	reportPath string
	pprofAddr  string
	stopPprof  func()
}

// SinkOptions configures OpenSink; empty fields disable the corresponding
// output.
type SinkOptions struct {
	Tool        string // report producer name, e.g. "holistic table2"
	TracePath   string // JSONL event trace destination
	ReportPath  string // metric report destination
	PprofAddr   string // net/http/pprof listen address
	TraceEvents int    // ring capacity (0 = DefaultTraceEvents)
}

// OpenSink validates and opens every requested output. The report file is
// seeded with a valid "partial" skeleton immediately, so no code path —
// crash included — leaves a zero-byte file at the path.
func OpenSink(o SinkOptions) (*Sink, error) {
	s := &Sink{tracePath: o.TracePath, reportPath: o.ReportPath}
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		s.Tracer = NewTracer(o.TraceEvents)
	}
	if o.ReportPath != "" {
		skeleton := &Report{Tool: o.Tool, Partial: true}
		if err := writeReportFile(o.ReportPath, skeleton); err != nil {
			return nil, fmt.Errorf("obs: report: %w", err)
		}
	}
	if o.PprofAddr != "" {
		addr, stop, err := ServePprof(o.PprofAddr)
		if err != nil {
			s.removeSkeleton()
			return nil, err
		}
		s.pprofAddr = addr
		s.stopPprof = stop
	}
	return s, nil
}

// removeSkeleton drops the partial report written by OpenSink when a later
// setup step fails: the run never started, so no artifact should remain.
func (s *Sink) removeSkeleton() {
	if s.reportPath != "" {
		os.Remove(s.reportPath)
	}
}

// PprofAddr returns the bound pprof address ("" when disabled).
func (s *Sink) PprofAddr() string {
	if s == nil {
		return ""
	}
	return s.pprofAddr
}

// Flush writes the final report (when rep is non-nil and a report path was
// given) and dumps the trace ring. Call it on every exit path that has
// results — including after an interrupt, where rep carries the completed
// prefix with Observational.Interrupted set.
func (s *Sink) Flush(rep *Report) error {
	if s == nil {
		return nil
	}
	if s.reportPath != "" && rep != nil {
		rep.Partial = false
		if rep.Observational.GeneratedAt == "" {
			rep.Observational.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		}
		if err := writeReportFile(s.reportPath, rep); err != nil {
			return fmt.Errorf("obs: report: %w", err)
		}
	}
	if s.tracePath != "" && s.Tracer != nil {
		f, err := os.Create(s.tracePath)
		if err != nil {
			return fmt.Errorf("obs: trace: %w", err)
		}
		if err := s.Tracer.WriteJSONL(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: trace: %w", err)
		}
	}
	return nil
}

// Close shuts the pprof server down. Safe on nil and after Flush.
func (s *Sink) Close() {
	if s == nil || s.stopPprof == nil {
		return
	}
	s.stopPprof()
	s.stopPprof = nil
}
