package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured trace record. Timestamps are nanoseconds since
// the tracer was created, so a trace file is self-contained and two traces
// of the same run shape align without wall-clock skew.
type Event struct {
	TS   int64  `json:"ts_ns"`
	Dur  int64  `json:"dur_ns,omitempty"`
	Kind string `json:"kind"`
	Name string `json:"name"`
	// Attrs carries small numeric payloads (schema index, slot count, SMT
	// effort deltas). Integer-valued so the JSONL form is stable.
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// Tracer records events into a fixed-size ring buffer: tracing a
// 100,000-schema enumeration must cost bounded memory, so the oldest events
// are overwritten and reported as dropped. A nil *Tracer is the off switch —
// every method no-ops — which is what keeps the instrumented hot paths at a
// single pointer check when tracing is disabled.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	ring    []Event
	next    int
	wrapped bool
	dropped int64
}

// DefaultTraceEvents is the ring capacity when NewTracer gets n <= 0.
const DefaultTraceEvents = 1 << 16

// NewTracer returns a tracer with capacity for n events (n <= 0 selects
// DefaultTraceEvents).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceEvents
	}
	return &Tracer{start: time.Now(), ring: make([]Event, n)}
}

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Emit records an instantaneous event.
func (t *Tracer) Emit(kind, name string, attrs map[string]int64) {
	if t == nil {
		return
	}
	t.emit(Event{TS: time.Since(t.start).Nanoseconds(), Kind: kind, Name: name, Attrs: attrs})
}

// Start opens a span: the returned func records the event with its duration
// (and the attrs passed at completion). Safe to call on a nil tracer — the
// returned func is a no-op then.
func (t *Tracer) Start(kind, name string) func(attrs map[string]int64) {
	if t == nil {
		return func(map[string]int64) {}
	}
	ts := time.Since(t.start).Nanoseconds()
	return func(attrs map[string]int64) {
		t.emit(Event{
			TS:   ts,
			Dur:  time.Since(t.start).Nanoseconds() - ts,
			Kind: kind, Name: name, Attrs: attrs,
		})
	}
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped counts events overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL dumps the buffered events one JSON object per line, followed
// by a trailer line (kind "trace_end") carrying the emitted/dropped totals
// so a consumer can tell a truncated trace from a short one.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	events := t.Events()
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	trailer := Event{
		TS:   time.Since(t.start).Nanoseconds(),
		Kind: "trace_end",
		Name: "trace_end",
		Attrs: map[string]int64{
			"events":  int64(len(events)),
			"dropped": t.Dropped(),
		},
	}
	if err := enc.Encode(trailer); err != nil {
		return err
	}
	return bw.Flush()
}
