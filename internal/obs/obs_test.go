package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("smt", "lp_checks")
	if got := r.Counter("smt", "lp_checks"); got != c {
		t.Error("second lookup returned a different counter")
	}
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Errorf("counter = %d, want 42", c.Load())
	}

	g := r.Gauge("schema", "queue_depth")
	g.Set(7)
	g.Set(3)
	if g.Load() != 3 {
		t.Errorf("gauge = %d, want 3 (last write wins)", g.Load())
	}

	h := r.Histogram("schema", "fold_ns")
	h.Observe(100)

	snap := r.Snapshot()
	if snap.Counters["smt"]["lp_checks"] != 42 {
		t.Errorf("snapshot counter = %d, want 42", snap.Counters["smt"]["lp_checks"])
	}
	if snap.Gauges["schema"]["queue_depth"] != 3 {
		t.Errorf("snapshot gauge = %d, want 3", snap.Gauges["schema"]["queue_depth"])
	}
	if snap.Histograms["schema"]["fold_ns"].Count != 1 {
		t.Errorf("snapshot histogram count = %d, want 1", snap.Histograms["schema"]["fold_ns"].Count)
	}
	if got := r.Subsystems(); len(got) != 2 || got[0] != "schema" || got[1] != "smt" {
		t.Errorf("subsystems = %v, want [schema smt]", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter load != 0")
	}
	var g *Gauge
	g.Set(1)
	if g.Load() != 0 {
		t.Error("nil gauge load != 0")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	var tr *Tracer
	tr.Emit("k", "n", nil)
	tr.Start("k", "n")(nil)
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer not empty")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestCounterConcurrency(t *testing.T) {
	c := NewRegistry().Counter("x", "y")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	// v <= 0 lands in bucket 0 (Lt 1), 1 in bucket 1 (Lt 2), 100 in the
	// [64,128) bucket (Lt 128).
	h.Observe(0)
	h.Observe(1)
	h.Observe(100)
	snap := h.Snapshot()
	if snap.Count != 3 || snap.Sum != 101 {
		t.Fatalf("count=%d sum=%d, want 3/101", snap.Count, snap.Sum)
	}
	want := map[int64]int64{1: 1, 2: 1, 128: 1}
	for _, b := range snap.Buckets {
		if want[b.Lt] != b.Count {
			t.Errorf("bucket lt=%d count=%d, want %d", b.Lt, b.Count, want[b.Lt])
		}
		delete(want, b.Lt)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit("k", fmt.Sprintf("e%d", i), nil)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want ring capacity 4", len(evs))
	}
	// Oldest first: e2..e5 survive, e0/e1 were overwritten.
	for i, ev := range evs {
		if want := fmt.Sprintf("e%d", i+2); ev.Name != want {
			t.Errorf("events[%d] = %s, want %s", i, ev.Name, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestTracerSpanAndJSONL(t *testing.T) {
	tr := NewTracer(8)
	end := tr.Start("query", "BV-Just0")
	time.Sleep(time.Millisecond)
	end(map[string]int64{"schemas": 65})
	tr.Emit("schema", "solve", map[string]int64{"index": 0})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 events + trailer", len(lines))
	}
	if lines[0].Kind != "query" || lines[0].Dur <= 0 || lines[0].Attrs["schemas"] != 65 {
		t.Errorf("span event wrong: %+v", lines[0])
	}
	last := lines[len(lines)-1]
	if last.Kind != "trace_end" || last.Attrs["events"] != 2 || last.Attrs["dropped"] != 0 {
		t.Errorf("trailer wrong: %+v", last)
	}
}

func TestReportValidate(t *testing.T) {
	good := &Report{Tool: "t", Deterministic: Deterministic{Queries: []QueryMetrics{
		{Model: "bv", Query: "BV-Just0", Mode: "full", Outcome: "holds", Schemas: 65, AvgLen: 11, Solver: SolverMetrics{LPChecks: 65}},
		{Model: "naive", Query: "Inv1_0", Mode: "full", Outcome: "budget"},
	}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good report rejected: %v", err)
	}

	bad := []*Report{
		{},                         // no tool
		{Tool: "t"},                // no deterministic payload
		{Tool: "t", Partial: true}, // skeleton
		{Tool: "t", Deterministic: Deterministic{Queries: []QueryMetrics{{Model: "m", Query: "q", Outcome: "maybe"}}}},
		{Tool: "t", Deterministic: Deterministic{Queries: []QueryMetrics{{Model: "m", Query: "q", Outcome: "budget", Schemas: 9}}}},
		{Tool: "t", Deterministic: Deterministic{Queries: []QueryMetrics{{Model: "m", Query: "q", Outcome: "holds", Schemas: -1}}}},
		{Tool: "t", Deterministic: Deterministic{Campaign: &CampaignMetrics{Kind: "mayhem", Runs: 1}}},
		{Tool: "t", Deterministic: Deterministic{Campaign: &CampaignMetrics{Kind: "chaos", Runs: 1, Decided: 2}}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad report %d accepted", i)
		}
	}
}

func TestReportRoundTripAndDeterministicJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rep.json")
	rep := &Report{Tool: "test", Deterministic: Deterministic{
		Campaign: &CampaignMetrics{Kind: "chaos", Runs: 10, Decided: 10, Events: map[string]int{"drop": 3}},
	}}
	rep.Observational.Workers = 4
	rep.Observational.GeneratedAt = "2026-08-05T00:00:00Z"
	if err := writeReportFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}

	// Observational differences must not leak into the deterministic bytes.
	other := &Report{Tool: "test", Deterministic: Deterministic{
		Campaign: &CampaignMetrics{Kind: "chaos", Runs: 10, Decided: 10, Events: map[string]int{"drop": 3}},
	}}
	other.Observational.Workers = 1
	other.Observational.GeneratedAt = "2020-01-01T00:00:00Z"
	a, err := got.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("deterministic sections differ:\n%s\nvs\n%s", a, b)
	}
}

func TestSinkFailFastAndSkeleton(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope", "out")
	if _, err := OpenSink(SinkOptions{Tool: "t", TracePath: missing}); err == nil {
		t.Error("bad trace path accepted")
	}
	if _, err := OpenSink(SinkOptions{Tool: "t", ReportPath: missing}); err == nil {
		t.Error("bad report path accepted")
	}

	// A bad pprof address must remove the report skeleton written just before.
	report := filepath.Join(dir, "rep.json")
	if _, err := OpenSink(SinkOptions{Tool: "t", ReportPath: report, PprofAddr: "256.256.256.256:1"}); err == nil {
		t.Fatal("bad pprof address accepted")
	}
	if _, err := os.Stat(report); !os.IsNotExist(err) {
		t.Error("skeleton survived a failed OpenSink")
	}
}

func TestSinkSkeletonThenFlush(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "rep.json")
	trace := filepath.Join(dir, "tr.jsonl")
	sink, err := OpenSink(SinkOptions{Tool: "t", ReportPath: report, TracePath: trace, TraceEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// Before Flush the file must hold a valid partial skeleton — and a
	// skeleton must fail Validate, so no consumer mistakes it for results.
	skel, err := ReadReport(report)
	if err != nil {
		t.Fatal(err)
	}
	if !skel.Partial {
		t.Error("skeleton not marked partial")
	}
	if err := skel.Validate(); err == nil {
		t.Error("skeleton passed Validate")
	}

	sink.Tracer.Emit("k", "n", nil)
	rep := &Report{Tool: "t", Deterministic: Deterministic{Campaign: &CampaignMetrics{Kind: "chaos", Runs: 1, Decided: 1}}}
	if err := sink.Flush(rep); err != nil {
		t.Fatal(err)
	}
	final, err := ReadReport(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := final.Validate(); err != nil {
		t.Errorf("flushed report invalid: %v", err)
	}
	if final.Observational.GeneratedAt == "" {
		t.Error("flush did not stamp GeneratedAt")
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "trace_end") {
		t.Error("flushed trace has no trace_end trailer")
	}
}

func TestServePprof(t *testing.T) {
	addr, stop, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint status %d", resp.StatusCode)
	}
	// The bound port must be rejected on a second bind.
	if _, _, err := ServePprof(addr); err == nil {
		t.Error("double bind accepted")
	}
}

func TestStartProgress(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(w, 5*time.Millisecond, func() string { return "tick" }, nil)
	time.Sleep(30 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "tick") {
		t.Errorf("no progress output: %q", out)
	}

	// A true stop hook silences the loop.
	buf.Reset()
	stop = StartProgress(w, 5*time.Millisecond, func() string { return "tick" }, func() bool { return true })
	time.Sleep(20 * time.Millisecond)
	stop()
	mu.Lock()
	out = buf.String()
	mu.Unlock()
	if out != "" {
		t.Errorf("progress printed after stop hook fired: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestRateLine(t *testing.T) {
	line := RateLine("seeds", 50, 200, 10*time.Second)
	for _, want := range []string{"50/200", "seeds", "25%", "5.0/s", "ETA 30s"} {
		if !strings.Contains(line, want) {
			t.Errorf("rate line %q missing %q", line, want)
		}
	}
	totalless := RateLine("schemas", 10, 0, 2*time.Second)
	if !strings.Contains(totalless, "10 schemas") || !strings.Contains(totalless, "5.0/s") {
		t.Errorf("totalless rate line wrong: %q", totalless)
	}
}
