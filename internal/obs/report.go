package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the `-report out.json` payload: the full metric snapshot of one
// CLI run. The two top-level sections enforce the package determinism rule
// structurally — everything under Deterministic must be byte-identical
// across worker counts (scripts/verify.sh asserts this at -j 1 vs -j 8),
// everything under Observational may vary run to run and must never be
// compared for equality.
type Report struct {
	// Tool identifies the producer, e.g. "holistic table2".
	Tool string `json:"tool"`
	// Partial marks a skeleton written before the run finished; a final
	// report always clears it. A consumer finding Partial set is looking at
	// the leftovers of a crash (never a zero-byte or truncated file: the
	// skeleton is written whole at startup, the final report atomically).
	Partial bool `json:"partial,omitempty"`

	Deterministic Deterministic `json:"deterministic"`
	Observational Observational `json:"observational"`
}

// Deterministic holds the verdict-relevant metrics, folded from per-index
// records (see internal/schema/parallel.go) rather than global counters.
type Deterministic struct {
	// Queries reports one row per property check.
	Queries []QueryMetrics `json:"queries,omitempty"`
	// Campaign reports a chaos/torture campaign aggregate.
	Campaign *CampaignMetrics `json:"campaign,omitempty"`
}

// QueryMetrics is the deterministic slice of one property verdict: the
// Table 2 columns plus the folded solver effort. Rows whose Outcome is
// "budget" zero the volatile fields (schema count, solver effort): a
// wall-clock timeout or an interrupt cuts the enumeration at a
// nondeterministic point, so only the outcome itself is stable.
type QueryMetrics struct {
	Model   string        `json:"model"`
	Query   string        `json:"query"`
	Mode    string        `json:"mode"`
	Outcome string        `json:"outcome"`
	Schemas int           `json:"schemas"`
	AvgLen  float64       `json:"avg_len"`
	Solver  SolverMetrics `json:"solver"`
}

// SolverMetrics is the folded SMT effort behind one verdict.
type SolverMetrics struct {
	LPChecks   int64 `json:"lp_checks"`
	Pivots     int64 `json:"pivots"`
	Rebuilds   int64 `json:"rebuilds"`
	BBNodes    int64 `json:"bb_nodes"`
	CaseSplits int64 `json:"case_splits"`
}

// CampaignMetrics is the deterministic aggregate of a seeded campaign: the
// contiguous-prefix fold makes these identical at any worker count for a
// completed campaign.
type CampaignMetrics struct {
	Kind       string         `json:"kind"` // "chaos" or "torture"
	Runs       int            `json:"runs"`
	Decided    int            `json:"decided"`
	Violations int            `json:"violations"`
	Events     map[string]int `json:"events,omitempty"`
}

// Observational holds everything wall-clock- or scheduling-dependent.
type Observational struct {
	GeneratedAt string `json:"generated_at,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	// Interrupted is set when a Stop hook cut the run short; the
	// deterministic section then covers only the completed prefix.
	Interrupted bool `json:"interrupted,omitempty"`
	// Timings decomposes each query's Elapsed into the encode/solve/fold
	// phases (summed across workers, so in-flight work discarded after the
	// first counterexample still counts — by design).
	Timings []QueryTimings `json:"timings,omitempty"`
	// Registry is the raw instrument snapshot (counters, gauges,
	// histograms) of the whole process.
	Registry Snapshot `json:"registry"`
}

// QueryTimings is the per-phase wall-clock breakdown of one check: how a
// Table 2 row's time splits across building LIA encodings (encode),
// discharging them (solve) and joining per-index records (fold).
type QueryTimings struct {
	Model     string `json:"model"`
	Query     string `json:"query"`
	ElapsedNS int64  `json:"elapsed_ns"`
	EncodeNS  int64  `json:"encode_ns"`
	SolveNS   int64  `json:"solve_ns"`
	FoldNS    int64  `json:"fold_ns"`
}

// knownOutcomes are the spec.Outcome strings a report may carry.
var knownOutcomes = map[string]bool{"holds": true, "violated": true, "budget": true}

// Validate checks the report against the documented schema: a tool name, at
// least one deterministic payload, known outcomes, and budget rows with
// their volatile fields zeroed. scripts/verify.sh runs this (via
// cmd/obscheck) on every report the smoke legs produce.
func (r *Report) Validate() error {
	if r.Tool == "" {
		return fmt.Errorf("obs: report has no tool name")
	}
	if r.Partial {
		return fmt.Errorf("obs: report is a partial skeleton (the producing run did not finish)")
	}
	if len(r.Deterministic.Queries) == 0 && r.Deterministic.Campaign == nil {
		return fmt.Errorf("obs: report has no deterministic payload")
	}
	for i, q := range r.Deterministic.Queries {
		if q.Model == "" || q.Query == "" {
			return fmt.Errorf("obs: query row %d has an empty model/query name", i)
		}
		if !knownOutcomes[q.Outcome] {
			return fmt.Errorf("obs: query row %s/%s has unknown outcome %q", q.Model, q.Query, q.Outcome)
		}
		if q.Outcome == "budget" && (q.Schemas != 0 || q.Solver != (SolverMetrics{})) {
			return fmt.Errorf("obs: budget row %s/%s carries volatile fields in the deterministic section", q.Model, q.Query)
		}
		if q.Schemas < 0 || q.AvgLen < 0 {
			return fmt.Errorf("obs: query row %s/%s has negative metrics", q.Model, q.Query)
		}
	}
	if c := r.Deterministic.Campaign; c != nil {
		if c.Kind != "chaos" && c.Kind != "torture" {
			return fmt.Errorf("obs: campaign kind %q unknown", c.Kind)
		}
		if c.Runs < 0 || c.Decided > c.Runs {
			return fmt.Errorf("obs: campaign counts inconsistent (%d decided of %d runs)", c.Decided, c.Runs)
		}
	}
	return nil
}

// DeterministicJSON marshals only the deterministic section, for the
// byte-identity comparison across worker counts.
func (r *Report) DeterministicJSON() ([]byte, error) {
	return json.MarshalIndent(r.Deterministic, "", "  ")
}

// ReadReport loads and decodes a report file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return &r, nil
}

// writeReportFile serializes the report and writes it in one shot (marshal
// first, then write), so an encoding failure never truncates an existing
// file and the file on disk is always complete JSON.
func writeReportFile(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
