package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
)

// ServePprof starts the net/http/pprof debug server on addr (e.g.
// "localhost:6060", or ":0" for an ephemeral port) and returns the bound
// address plus a shutdown func. Binding failures (port already in use, bad
// address) are returned immediately so a CLI can fail fast with a one-line
// diagnostic instead of silently running unprofiled.
func ServePprof(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return ln.Addr().String(), func() { srv.Close() }, nil
}
