package obs

import "sync/atomic"

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0 and
// v == 1 lands in bucket 1); 63 buckets cover the whole int64 range, so
// nanosecond latencies from tens of ns to hours resolve to ~2x precision.
const histBuckets = 63

// Histogram is a lock-free power-of-two-bucket histogram, intended for
// latency observations in nanoseconds. The zero value is ready to use; all
// methods are concurrency- and nil-receiver safe. Histograms are
// observational by the package determinism rule: concurrent observers race,
// and wall-clock inputs differ run to run.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index: the number of bits
// needed to represent v (0 for v <= 0).
func bucketOf(v int64) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// HistogramBucket is one non-empty bucket of a snapshot: Count observations
// were < Lt (the exclusive upper bound, a power of two).
type HistogramBucket struct {
	Lt    int64 `json:"lt"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serializable point-in-time state.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Counts and sum may be mutually slightly
// stale under concurrent Observe calls; fine for an observational dump.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			snap.Buckets = append(snap.Buckets, HistogramBucket{Lt: 1 << i, Count: n})
		}
	}
	return snap
}
