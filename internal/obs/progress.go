package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// StartProgress emits status() to w every interval until the returned stop
// func is called (long campaigns print "current seed, rate, ETA" lines with
// it). The loop also honors the cooperative-interrupt hook: when stopHook
// (may be nil) reports true the loop falls silent, so a graceful wind-down
// is not interleaved with progress chatter. The returned func is idempotent
// and waits for the loop goroutine to exit.
func StartProgress(w io.Writer, interval time.Duration, status func() string, stopHook func() bool) (stop func()) {
	if interval <= 0 || status == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if stopHook != nil && stopHook() {
					return
				}
				fmt.Fprintln(w, status())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// RateLine formats the standard progress line: done/total units, the
// current rate, and the ETA extrapolated from elapsed wall clock. It is a
// plain helper so the CLIs render campaign seeds and schema enumerations
// the same way.
func RateLine(what string, done, total int64, elapsed time.Duration) string {
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(done) / s
	}
	if total <= 0 {
		return fmt.Sprintf("progress: %d %s, %.1f/s", done, what, rate)
	}
	eta := "?"
	if rate > 0 && done < total {
		eta = (time.Duration(float64(total-done)/rate*float64(time.Second)) / time.Second * time.Second).String()
	} else if done >= total {
		eta = "0s"
	}
	return fmt.Sprintf("progress: %d/%d %s (%.0f%%), %.1f/s, ETA %s",
		done, total, what, 100*float64(done)/float64(total), rate, eta)
}
