// Package obs is the zero-dependency observability plane of the
// verification stack: cheap atomic counters, gauges and histograms
// registered per subsystem, a structured span/event tracer (ring buffer,
// off by default), a serializable metric report with an explicit
// determinism segregation, and the runtime hooks (pprof server, periodic
// progress line) the CLIs expose.
//
// The paper's headline result is a wall-clock table; this package exists so
// a Table 2 row can be decomposed from one run: where the time went across
// the SMT solver, the schema enumeration and the campaign engines, instead
// of a single opaque Elapsed.
//
// Determinism rule. Metrics come in two classes, and the Report type keeps
// them apart structurally:
//
//   - deterministic: values that feed verdicts (outcomes, schema counts,
//     folded solver effort). These are computed from per-index records
//     joined in preorder — never from the racing global counters below —
//     and must be byte-identical at any worker count.
//   - observational: everything the registry holds (raw counters, queue
//     depths, timings, poll counts). Workers race on these, discarded
//     work still counts, and two runs of the same query legitimately
//     differ. They must never be compared for equality across runs.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter. The zero value is ready to use;
// all methods are safe for concurrent use and nil-receiver safe so call
// sites need no guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-write-wins value (queue depths, current seed).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds the named instruments, keyed subsystem/name. Lookup is
// mutex-guarded (instrument handles are meant to be grabbed once, at
// package init or setup time); the instruments themselves are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]map[string]*Counter
	gauges     map[string]map[string]*Gauge
	histograms map[string]map[string]*Histogram
}

// Default is the process-wide registry the subsystems register into.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]map[string]*Counter{},
		gauges:     map[string]map[string]*Gauge{},
		histograms: map[string]map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(subsystem, name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.counters[subsystem]
	if m == nil {
		m = map[string]*Counter{}
		r.counters[subsystem] = m
	}
	c := m[name]
	if c == nil {
		c = &Counter{}
		m[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(subsystem, name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.gauges[subsystem]
	if m == nil {
		m = map[string]*Gauge{}
		r.gauges[subsystem] = m
	}
	g := m[name]
	if g == nil {
		g = &Gauge{}
		m[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(subsystem, name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.histograms[subsystem]
	if m == nil {
		m = map[string]*Histogram{}
		r.histograms[subsystem] = m
	}
	h := m[name]
	if h == nil {
		h = &Histogram{}
		m[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry, in the shape the report
// serializes. All snapshot content is observational by the package rule.
type Snapshot struct {
	Counters   map[string]map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument's current value. Concurrent updates may
// land between reads; the snapshot is consistent per instrument only (which
// is all an observational dump needs).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{}
	if len(r.counters) > 0 {
		snap.Counters = map[string]map[string]int64{}
		for sub, m := range r.counters {
			out := make(map[string]int64, len(m))
			for name, c := range m {
				out[name] = c.Load()
			}
			snap.Counters[sub] = out
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = map[string]map[string]int64{}
		for sub, m := range r.gauges {
			out := make(map[string]int64, len(m))
			for name, g := range m {
				out[name] = g.Load()
			}
			snap.Gauges[sub] = out
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = map[string]map[string]HistogramSnapshot{}
		for sub, m := range r.histograms {
			out := make(map[string]HistogramSnapshot, len(m))
			for name, h := range m {
				out[name] = h.Snapshot()
			}
			snap.Histograms[sub] = out
		}
	}
	return snap
}

// Subsystems lists the subsystems with at least one instrument, sorted.
func (r *Registry) Subsystems() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	for sub := range r.counters {
		seen[sub] = true
	}
	for sub := range r.gauges {
		seen[sub] = true
	}
	for sub := range r.histograms {
		seen[sub] = true
	}
	out := make([]string, 0, len(seen))
	for sub := range seen {
		out = append(out, sub)
	}
	sort.Strings(out)
	return out
}
