// Durable chain storage: each replica's committed chain lives in a
// write-ahead log (internal/wal) — one record per superblock over a periodic
// chain snapshot — so a restarted replica reboots from *disk*, not from the
// orchestrator's memory. Corruption the checksums catch is quarantined: the
// damaged log is reset and the replica is caught up by the existing Recover
// state transfer, then re-persisted. This is the ledger half of the
// durability plane; internal/faults exercises the consensus half.

package blockchain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/network"
	"repro/internal/wal"
)

// chainCompactEvery is the snapshot+truncate cadence, in committed blocks.
const chainCompactEvery = 8

// blockStore is one replica's durable chain: a wal.Log of block records over
// a chain-prefix snapshot.
type blockStore struct {
	fs        wal.FS
	dir       string
	log       *wal.Log
	sinceSnap int
}

// RestartReport describes what a replica restart found on disk.
type RestartReport struct {
	// FromDisk is how many blocks the WAL yielded.
	FromDisk int
	// Corrupt is set when the on-disk state was detected as damaged (bad
	// checksum, impossible structure, or a height discontinuity); the log
	// was quarantined and reset.
	Corrupt bool
	// Reason holds the detection message when Corrupt.
	Reason string
	// Transferred is how many blocks state transfer copied from peers after
	// the disk image fell short.
	Transferred int
}

// EnableDurability attaches a WAL-backed chain store to every correct
// replica, rooted at root/r<id> on fs. Existing durable state is loaded —
// this is the restart-from-disk path — and detected corruption follows the
// quarantine-and-transfer flow of RestartReplica.
func (l *Ledger) EnableDurability(fs wal.FS, root string) error {
	if l.stores == nil {
		l.stores = map[network.ProcID]*blockStore{}
	}
	for i := 0; i < l.cfg.N; i++ {
		id := network.ProcID(i)
		if l.byz[id] {
			continue
		}
		st := &blockStore{fs: fs, dir: filepath.Join(root, fmt.Sprintf("r%d", id))}
		l.stores[id] = st
		if _, err := l.RestartReplica(id); err != nil {
			return err
		}
	}
	return nil
}

// RestartReplica models a process restart of one replica: the in-memory
// chain is dropped and rebuilt from the WAL. A clean log yields the chain
// back verbatim; a damaged one (checksum mismatch, undecodable record, or a
// height discontinuity) is quarantined — reset to empty — and the replica is
// caught up from peers by Recover state transfer, after which the
// transferred chain is persisted again. The WAL can therefore never silently
// feed a corrupted block into the ledger.
func (l *Ledger) RestartReplica(id network.ProcID) (RestartReport, error) {
	var rep RestartReport
	st := l.stores[id]
	if st == nil {
		return rep, fmt.Errorf("blockchain: replica %d has no durable store", id)
	}
	chain, err := st.load()
	if err != nil {
		if !isCorruption(err) {
			return rep, err
		}
		rep.Corrupt = true
		rep.Reason = err.Error()
		if err := st.reset(); err != nil {
			return rep, err
		}
		chain = nil
	}
	rep.FromDisk = len(chain)
	l.chains[id] = chain

	// Catch up past the durable prefix: Recover runs the state transfer and
	// (through persistRecover) makes the transferred blocks durable too.
	before := len(chain)
	if err := l.Recover(id); err != nil {
		return rep, err
	}
	rep.Transferred = len(l.chains[id]) - before
	return rep, nil
}

// load opens the WAL and decodes the durable chain: snapshot prefix plus one
// block per record, heights strictly continuous.
func (s *blockStore) load() ([]Block, error) {
	if s.log != nil {
		s.log.Close()
		s.log = nil
	}
	log, rec, err := wal.Open(wal.Options{FS: s.fs, Dir: s.dir, Sync: wal.SyncEachAppend})
	if err != nil {
		return nil, err
	}
	s.log, s.sinceSnap = log, 0
	var chain []Block
	if rec.Snapshot != nil {
		chain, err = decodeChain(rec.Snapshot)
		if err != nil {
			return nil, err
		}
	}
	for _, r := range rec.Records {
		b, err := decodeBlock(r)
		if err != nil {
			return nil, err
		}
		if b.Height != len(chain) {
			return nil, fmt.Errorf("%w: block record has height %d, chain is at %d", wal.ErrCorrupt, b.Height, len(chain))
		}
		chain = append(chain, b)
	}
	for h, b := range chain {
		if b.Height != h {
			return nil, fmt.Errorf("%w: snapshot chain has height %d at position %d", wal.ErrCorrupt, b.Height, h)
		}
	}
	return chain, nil
}

// reset quarantines a damaged log: every file in the replica's directory is
// removed and a fresh log is opened.
func (s *blockStore) reset() error {
	if s.log != nil {
		s.log.Close()
		s.log = nil
	}
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	log, _, err := wal.Open(wal.Options{FS: s.fs, Dir: s.dir, Sync: wal.SyncEachAppend})
	if err != nil {
		return err
	}
	s.log, s.sinceSnap = log, 0
	return nil
}

// appendBlock persists one committed block, compacting on cadence.
func (s *blockStore) appendBlock(b Block, chain []Block) error {
	if err := s.log.Append(encodeBlock(b)); err != nil {
		return err
	}
	s.sinceSnap++
	if s.sinceSnap >= chainCompactEvery {
		return s.snapshotChain(chain)
	}
	return nil
}

// snapshotChain compacts the log to a single chain snapshot.
func (s *blockStore) snapshotChain(chain []Block) error {
	if err := s.log.SaveSnapshot(encodeChain(chain)); err != nil {
		return err
	}
	s.sinceSnap = 0
	return nil
}

// persistCommit is CommitHeight's hook: the block every available replica
// just appended in memory becomes durable before the height returns.
func (l *Ledger) persistCommit(b Block) error {
	for id, st := range l.stores {
		if !l.available(id) {
			continue
		}
		if err := st.appendBlock(b, l.chains[id]); err != nil {
			return fmt.Errorf("blockchain: replica %d: persist height %d: %w", id, b.Height, err)
		}
	}
	return nil
}

// persistRecover makes a state transfer durable (Recover's hook).
func (l *Ledger) persistRecover(id network.ProcID, transferred int) error {
	st := l.stores[id]
	if st == nil || st.log == nil || transferred == 0 {
		return nil
	}
	return st.snapshotChain(l.chains[id])
}

// isCorruption reports whether err is detected damage (as opposed to an
// environmental failure like a missing directory).
func isCorruption(err error) bool {
	return errors.Is(err, wal.ErrCorrupt)
}

// --- codec ---
//
// Blocks are encoded with uvarint framing: height, proposals, tx count, then
// each transaction length-prefixed. A chain is a uvarint count of
// length-prefixed blocks. Decoders reject truncation, overlong lengths, and
// trailing garbage — a flipped byte that survives the CRC (it cannot, but
// defense in depth is free here) still fails structurally.

const maxChainDecode = 1 << 26

func encodeBlock(b Block) []byte {
	out := binary.AppendUvarint(nil, uint64(b.Height))
	out = binary.AppendUvarint(out, uint64(b.Proposals))
	out = binary.AppendUvarint(out, uint64(len(b.Txs)))
	for _, tx := range b.Txs {
		out = binary.AppendUvarint(out, uint64(len(tx)))
		out = append(out, tx...)
	}
	return out
}

func decodeBlock(data []byte) (Block, error) {
	b, rest, err := decodeBlockPrefix(data)
	if err != nil {
		return Block{}, err
	}
	if len(rest) != 0 {
		return Block{}, fmt.Errorf("%w: %d trailing bytes after block", wal.ErrCorrupt, len(rest))
	}
	return b, nil
}

func decodeBlockPrefix(data []byte) (Block, []byte, error) {
	var b Block
	u, data, err := readUvarint(data)
	if err != nil {
		return b, nil, err
	}
	b.Height = int(u)
	u, data, err = readUvarint(data)
	if err != nil {
		return b, nil, err
	}
	b.Proposals = int(u)
	count, data, err := readUvarint(data)
	if err != nil {
		return b, nil, err
	}
	if count > uint64(len(data)) {
		return b, nil, fmt.Errorf("%w: block claims %d transactions in %d bytes", wal.ErrCorrupt, count, len(data))
	}
	for i := uint64(0); i < count; i++ {
		var n uint64
		n, data, err = readUvarint(data)
		if err != nil {
			return b, nil, err
		}
		if n > uint64(len(data)) {
			return b, nil, fmt.Errorf("%w: transaction length %d exceeds %d remaining bytes", wal.ErrCorrupt, n, len(data))
		}
		b.Txs = append(b.Txs, Tx(data[:n]))
		data = data[n:]
	}
	return b, data, nil
}

func encodeChain(chain []Block) []byte {
	out := binary.AppendUvarint(nil, uint64(len(chain)))
	for _, b := range chain {
		enc := encodeBlock(b)
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

func decodeChain(data []byte) ([]Block, error) {
	if len(data) > maxChainDecode {
		return nil, fmt.Errorf("%w: chain snapshot of %d bytes", wal.ErrCorrupt, len(data))
	}
	count, data, err := readUvarint(data)
	if err != nil {
		return nil, err
	}
	if count > uint64(len(data)) {
		return nil, fmt.Errorf("%w: chain claims %d blocks in %d bytes", wal.ErrCorrupt, count, len(data))
	}
	var chain []Block
	for i := uint64(0); i < count; i++ {
		var n uint64
		n, data, err = readUvarint(data)
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)) {
			return nil, fmt.Errorf("%w: block length %d exceeds %d remaining bytes", wal.ErrCorrupt, n, len(data))
		}
		b, err := decodeBlock(data[:n])
		if err != nil {
			return nil, err
		}
		chain = append(chain, b)
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after chain", wal.ErrCorrupt, len(data))
	}
	return chain, nil
}

func readUvarint(data []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", wal.ErrCorrupt)
	}
	return u, data[n:], nil
}
