package blockchain

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/wal"
)

func durableLedger(t *testing.T, fs wal.FS) *Ledger {
	t.Helper()
	l, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.EnableDurability(fs, "chains"); err != nil {
		t.Fatal(err)
	}
	return l
}

func commitHeights(t *testing.T, l *Ledger, from, n int) {
	t.Helper()
	for h := from; h < from+n; h++ {
		for i := 0; i < 4; i++ {
			l.Submit(network.ProcID(i), Tx(fmt.Sprintf("h%d-p%d", h, i)))
		}
		if _, err := l.CommitHeight(); err != nil {
			t.Fatalf("height %d: %v", h, err)
		}
	}
}

// TestDurableLedgerRestartsFromDisk: a fresh Ledger over the same filesystem
// rebuilds every chain from the WAL alone — no peer, no memory.
func TestDurableLedgerRestartsFromDisk(t *testing.T) {
	fs := wal.NewMemFS()
	l := durableLedger(t, fs)
	commitHeights(t, l, 0, 11) // crosses the compaction cadence
	want := l.Chain(0)

	l2, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.EnableDurability(fs, "chains"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got := l2.Chain(network.ProcID(i))
		if len(got) != len(want) {
			t.Fatalf("replica %d restarted with %d blocks, want %d", i, len(got), len(want))
		}
		for h := range got {
			if !sameBlock(got[h], want[h]) {
				t.Fatalf("replica %d: block %d differs after restart:\n %v\n %v", i, h, got[h], want[h])
			}
		}
	}
	if err := l2.VerifyChains(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRestartReplicaCleanDisk: restarting one replica mid-run reloads
// its full chain from disk with nothing transferred.
func TestDurableRestartReplicaCleanDisk(t *testing.T) {
	fs := wal.NewMemFS()
	l := durableLedger(t, fs)
	commitHeights(t, l, 0, 5)

	rep, err := l.RestartReplica(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt || rep.FromDisk != 5 || rep.Transferred != 0 {
		t.Fatalf("clean restart report = %+v", rep)
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	commitHeights(t, l, 5, 1)
}

// TestDurableCorruptionQuarantinesAndTransfers: flip one durable byte in a
// replica's log; the restart must detect it (never silently load a damaged
// block), reset the log, and catch the replica up from peers.
func TestDurableCorruptionQuarantinesAndTransfers(t *testing.T) {
	fs := wal.NewMemFS()
	l := durableLedger(t, fs)
	commitHeights(t, l, 0, 5)

	dir := filepath.Join("chains", "r1")
	names, err := fs.ReadDir(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no durable files for r1: %v %v", names, err)
	}
	corrupted := false
	for _, name := range names {
		full := filepath.Join(dir, name)
		if fs.CorruptByte(full, fs.Size(full)/2, 0x40) {
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("could not corrupt any durable byte")
	}

	rep, err := l.RestartReplica(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt {
		t.Fatalf("corruption not detected: report = %+v", rep)
	}
	if rep.FromDisk != 0 || rep.Transferred != 5 {
		t.Fatalf("expected full state transfer after quarantine, got %+v", rep)
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	// The transferred chain is durable again: another restart is clean.
	rep2, err := l.RestartReplica(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Corrupt || rep2.FromDisk != 5 || rep2.Transferred != 0 {
		t.Fatalf("post-repair restart report = %+v", rep2)
	}
}

// TestDurableEveryByteFlipDetectedOrHarmless sweeps a flip over every durable
// byte of one replica's log: each restart must either report corruption or
// load a chain identical to the original — a silently altered block is the
// one forbidden outcome.
func TestDurableEveryByteFlipDetectedOrHarmless(t *testing.T) {
	build := func() (*wal.MemFS, []Block) {
		fs := wal.NewMemFS()
		l := durableLedger(t, fs)
		commitHeights(t, l, 0, 3)
		return fs, l.Chain(3)
	}
	base, want := build()
	dir := filepath.Join("chains", "r3")
	names, err := base.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, name := range names {
		full := filepath.Join(dir, name)
		size := base.Size(full)
		for off := 0; off < size; off++ {
			fs, _ := build()
			if !fs.CorruptByte(full, off, 0x01) {
				t.Fatalf("flip at %s+%d failed", full, off)
			}
			// A fresh single-replica ledger: no peers to transfer from, so
			// whatever loads came purely from disk.
			solo, err := NewLedger(4, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			solo.stores = map[network.ProcID]*blockStore{3: {fs: fs, dir: dir}}
			rep, err := solo.RestartReplica(3)
			if err != nil {
				t.Fatalf("flip %s+%d: %v", full, off, err)
			}
			flips++
			if rep.Corrupt {
				continue
			}
			got := solo.Chain(3)
			if len(got) > len(want) {
				t.Fatalf("flip %s+%d: loaded %d blocks from a %d-block log", full, off, len(got), len(want))
			}
			for h := range got {
				if !sameBlock(got[h], want[h]) {
					t.Fatalf("flip %s+%d: silently altered block %d: %v != %v", full, off, h, got[h], want[h])
				}
			}
		}
	}
	if flips == 0 {
		t.Fatal("sweep covered zero bytes")
	}
}

// TestBlockCodecRoundTrip: the block and chain codecs are exact inverses and
// reject trailing garbage.
func TestBlockCodecRoundTrip(t *testing.T) {
	chain := []Block{
		{Height: 0, Proposals: 4, Txs: []Tx{"a", "bb", ""}},
		{Height: 1, Proposals: 3, Txs: nil},
		{Height: 2, Proposals: 1, Txs: []Tx{Tx(strings.Repeat("x", 300))}},
	}
	for _, b := range chain {
		got, err := decodeBlock(encodeBlock(b))
		if err != nil {
			t.Fatal(err)
		}
		if !sameBlock(got, b) || got.Proposals != b.Proposals {
			t.Fatalf("block round trip: %v != %v", got, b)
		}
	}
	got, err := decodeChain(encodeChain(chain))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chain) {
		t.Fatalf("chain round trip length %d != %d", len(got), len(chain))
	}
	if _, err := decodeBlock(append(encodeBlock(chain[0]), 0)); err == nil {
		t.Fatal("trailing byte accepted by decodeBlock")
	}
	if _, err := decodeChain(append(encodeChain(chain), 0)); err == nil {
		t.Fatal("trailing byte accepted by decodeChain")
	}
	if _, err := decodeChain([]byte{0xff}); err == nil {
		t.Fatal("truncated varint accepted")
	}
}
