package blockchain

import (
	"fmt"
	"testing"

	"repro/internal/network"
)

func TestNewLedgerValidation(t *testing.T) {
	if _, err := NewLedger(3, 1, nil); err == nil {
		t.Error("n=3 t=1 violates n>3t")
	}
	if _, err := NewLedger(4, 1, []network.ProcID{1, 2}); err == nil {
		t.Error("two byzantine replicas exceed t=1")
	}
	if _, err := NewLedger(4, 1, []network.ProcID{9}); err == nil {
		t.Error("out-of-range byzantine id")
	}
	if _, err := NewLedger(4, 1, []network.ProcID{3}); err != nil {
		t.Errorf("valid ledger rejected: %v", err)
	}
}

func TestCommitHeightsAllCorrect(t *testing.T) {
	l, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Submit(0, "alice->bob:10")
	l.Submit(1, "bob->carol:5")
	l.Submit(2, "carol->dan:2")
	l.Submit(3, "dan->alice:1")

	block, err := l.CommitHeight()
	if err != nil {
		t.Fatal(err)
	}
	if block.Height != 0 {
		t.Errorf("height = %d, want 0", block.Height)
	}
	if len(block.Txs) < 3 { // at least n-t proposals commit
		t.Errorf("block %v too small", block)
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}

	// Committed transactions must leave the mempools: a second height with
	// no new submissions commits an empty (or near-empty) superblock.
	block2, err := l.CommitHeight()
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range block2.Txs {
		for _, prev := range block.Txs {
			if tx == prev {
				t.Errorf("transaction %q committed twice", tx)
			}
		}
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 2 {
		t.Errorf("height = %d, want 2", l.Height())
	}
}

func TestCommitWithByzantineReplica(t *testing.T) {
	l, err := NewLedger(4, 1, []network.ProcID{2})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		l.Submit(0, Tx(fmt.Sprintf("p0-tx%d", h)))
		l.Submit(1, Tx(fmt.Sprintf("p1-tx%d", h)))
		l.Submit(3, Tx(fmt.Sprintf("p3-tx%d", h)))
		block, err := l.CommitHeight()
		if err != nil {
			t.Fatalf("height %d: %v", h, err)
		}
		if len(block.Txs) < 3 {
			t.Errorf("height %d: block %v missing correct proposals", h, block)
		}
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 3 {
		t.Errorf("height = %d, want 3", l.Height())
	}
	// All correct chains identical, and byzantine slot has no chain.
	if got := l.Chain(2); got != nil {
		t.Errorf("byzantine replica has a chain: %v", got)
	}
	if got := l.Chain(0); len(got) != 3 {
		t.Errorf("replica 0 chain length %d", len(got))
	}
}

func TestDuplicateSubmissionsDeduplicated(t *testing.T) {
	l, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The same transaction reaches several replicas (gossip): the
	// superblock must contain it once.
	for i := 0; i < 4; i++ {
		l.Submit(network.ProcID(i), "shared-tx")
	}
	block, err := l.CommitHeight()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tx := range block.Txs {
		if tx == "shared-tx" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("shared-tx appears %d times in %v", count, block)
	}
}
