package blockchain

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/network"
)

func TestNewLedgerValidation(t *testing.T) {
	if _, err := NewLedger(3, 1, nil); err == nil {
		t.Error("n=3 t=1 violates n>3t")
	}
	if _, err := NewLedger(4, 1, []network.ProcID{1, 2}); err == nil {
		t.Error("two byzantine replicas exceed t=1")
	}
	if _, err := NewLedger(4, 1, []network.ProcID{9}); err == nil {
		t.Error("out-of-range byzantine id")
	}
	if _, err := NewLedger(4, 1, []network.ProcID{3}); err != nil {
		t.Errorf("valid ledger rejected: %v", err)
	}
}

func TestCommitHeightsAllCorrect(t *testing.T) {
	l, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Submit(0, "alice->bob:10")
	l.Submit(1, "bob->carol:5")
	l.Submit(2, "carol->dan:2")
	l.Submit(3, "dan->alice:1")

	block, err := l.CommitHeight()
	if err != nil {
		t.Fatal(err)
	}
	if block.Height != 0 {
		t.Errorf("height = %d, want 0", block.Height)
	}
	if len(block.Txs) < 3 { // at least n-t proposals commit
		t.Errorf("block %v too small", block)
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}

	// Committed transactions must leave the mempools: a second height with
	// no new submissions commits an empty (or near-empty) superblock.
	block2, err := l.CommitHeight()
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range block2.Txs {
		for _, prev := range block.Txs {
			if tx == prev {
				t.Errorf("transaction %q committed twice", tx)
			}
		}
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 2 {
		t.Errorf("height = %d, want 2", l.Height())
	}
}

func TestCommitWithByzantineReplica(t *testing.T) {
	l, err := NewLedger(4, 1, []network.ProcID{2})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		l.Submit(0, Tx(fmt.Sprintf("p0-tx%d", h)))
		l.Submit(1, Tx(fmt.Sprintf("p1-tx%d", h)))
		l.Submit(3, Tx(fmt.Sprintf("p3-tx%d", h)))
		block, err := l.CommitHeight()
		if err != nil {
			t.Fatalf("height %d: %v", h, err)
		}
		if len(block.Txs) < 3 {
			t.Errorf("height %d: block %v missing correct proposals", h, block)
		}
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 3 {
		t.Errorf("height = %d, want 3", l.Height())
	}
	// All correct chains identical, and byzantine slot has no chain.
	if got := l.Chain(2); got != nil {
		t.Errorf("byzantine replica has a chain: %v", got)
	}
	if got := l.Chain(0); len(got) != 3 {
		t.Errorf("replica 0 chain length %d", len(got))
	}
}

func TestDuplicateSubmissionsDeduplicated(t *testing.T) {
	l, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The same transaction reaches several replicas (gossip): the
	// superblock must contain it once.
	for i := 0; i < 4; i++ {
		l.Submit(network.ProcID(i), "shared-tx")
	}
	block, err := l.CommitHeight()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tx := range block.Txs {
		if tx == "shared-tx" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("shared-tx appears %d times in %v", count, block)
	}
}

func TestCommitWithCrashedReplicaDegradesGracefully(t *testing.T) {
	l, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.Submit(network.ProcID(i), Tx(fmt.Sprintf("h0-p%d", i)))
	}
	if _, err := l.CommitHeight(); err != nil {
		t.Fatalf("baseline height: %v", err)
	}

	// Replica 3 crashes. The ledger must keep committing with the other
	// three (n=4, t=1: one unavailable replica is within tolerance).
	if err := l.SetHealth(3, Crashed); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l.Submit(network.ProcID(i), Tx(fmt.Sprintf("h1-p%d", i)))
	}
	block, err := l.CommitHeight()
	if err != nil {
		t.Fatalf("commit with crashed replica: %v", err)
	}
	if len(block.Txs) == 0 {
		t.Error("degraded height committed an empty block")
	}
	if got := len(l.Chain(3)); got != 1 {
		t.Errorf("crashed replica chain length %d, want 1 (lagging)", got)
	}
	if err := l.VerifyChains(); err != nil {
		t.Errorf("lagging crashed replica flagged as fork: %v", err)
	}

	// Status must report the degradation.
	var crashed int
	for _, st := range l.Status() {
		if st.Health == Crashed {
			crashed++
			if st.ID != 3 {
				t.Errorf("replica %d reported crashed", st.ID)
			}
			if st.Height != 1 {
				t.Errorf("crashed replica height %d, want 1", st.Height)
			}
		}
	}
	if crashed != 1 {
		t.Errorf("%d replicas reported crashed, want 1", crashed)
	}
}

func TestRecoverCatchesUpByStateTransfer(t *testing.T) {
	l, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetHealth(2, Partitioned); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		l.Submit(0, Tx(fmt.Sprintf("tx-%d", h)))
		if _, err := l.CommitHeight(); err != nil {
			t.Fatalf("height %d: %v", h, err)
		}
	}
	if got := len(l.Chain(2)); got != 0 {
		t.Fatalf("partitioned replica advanced to height %d", got)
	}

	if err := l.SetHealth(2, Healthy); err != nil {
		t.Fatal(err)
	}
	if got := len(l.Chain(2)); got != 3 {
		t.Errorf("recovered replica at height %d, want 3 after state transfer", got)
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	// And it participates in the next height again.
	l.Submit(2, "post-recovery-tx")
	block, err := l.CommitHeight()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tx := range block.Txs {
		if tx == "post-recovery-tx" {
			found = true
		}
	}
	if !found {
		t.Errorf("recovered replica's proposal missing from %v", block)
	}
}

func TestCommitRefusesWhenFaultsExceedTolerance(t *testing.T) {
	// One Byzantine + one crashed = 2 > t=1: committing would hand the
	// adversary a quorum, so the ledger must refuse, not stall or fork.
	l, err := NewLedger(4, 1, []network.ProcID{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetHealth(1, Crashed); err != nil {
		t.Fatal(err)
	}
	if _, err := l.CommitHeight(); err == nil {
		t.Fatal("commit succeeded with byzantine+crashed > t")
	}
	// Healing the crash restores service.
	if err := l.SetHealth(1, Healthy); err != nil {
		t.Fatal(err)
	}
	l.Submit(1, "tx")
	if _, err := l.CommitHeight(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
}

func TestSetHealthValidation(t *testing.T) {
	l, err := NewLedger(4, 1, []network.ProcID{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetHealth(9, Crashed); err == nil {
		t.Error("out-of-range replica accepted")
	}
	if err := l.SetHealth(2, Crashed); err == nil {
		t.Error("health change on byzantine replica accepted")
	}
}

func TestCommitHeightUnderFaultPlan(t *testing.T) {
	// Wire a lossy-but-fair fault plan into the ledger's consensus runs:
	// bounded drops and duplicates on every link. Retransmission must push
	// every height through and the chains must stay fork-free.
	l, err := NewLedger(4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Faults = &faults.Plan{
		Seed:      7,
		Drops:     []faults.DropRule{{Prob: 0.25, Budget: 1}},
		DupProb:   0.2,
		DupBudget: 1,
	}
	l.TickInterval = 25
	for h := 0; h < 3; h++ {
		for i := 0; i < 4; i++ {
			l.Submit(network.ProcID(i), Tx(fmt.Sprintf("h%d-p%d", h, i)))
		}
		block, err := l.CommitHeight()
		if err != nil {
			t.Fatalf("height %d under fault plan (seed %d): %v", h, l.Faults.Seed, err)
		}
		if len(block.Txs) == 0 {
			t.Errorf("height %d committed empty block under fault plan", h)
		}
	}
	if err := l.VerifyChains(); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 3 {
		t.Errorf("height = %d, want 3", l.Height())
	}
}
