// Package blockchain is the application layer the paper's verification
// ultimately protects: a Red-Belly-style replicated ledger. At every height
// each replica proposes a block of pending transactions; the DBFT vector
// consensus (internal/dbft) decides which proposals commit; their union
// forms the height's *superblock* — the Red Belly construction in which up
// to n proposals commit per consensus instance instead of one.
//
// Because the underlying binary consensus is the verified algorithm, the
// ledger inherits its guarantees: no fork with f <= t < n/3 under any
// schedule, and progress under the bv-broadcast fairness assumption.
package blockchain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dbft"
	"repro/internal/fairness"
	"repro/internal/faults"
	"repro/internal/network"
)

// Tx is a transaction payload.
type Tx string

// Block is one committed superblock.
type Block struct {
	Height int
	// Proposals records how many replica proposals the superblock merged.
	Proposals int
	Txs       []Tx
}

func (b Block) String() string {
	parts := make([]string, len(b.Txs))
	for i, tx := range b.Txs {
		parts[i] = string(tx)
	}
	return fmt.Sprintf("block %d (%d proposals): [%s]", b.Height, b.Proposals, strings.Join(parts, " "))
}

// Health is a replica's availability state as seen by the ledger
// orchestrator.
type Health int

// Replica health states.
const (
	// Healthy replicas propose and vote.
	Healthy Health = iota
	// Crashed replicas are down: they neither propose nor vote, and their
	// chains lag until Recover catches them up.
	Crashed
	// Partitioned replicas are unreachable: operationally identical to
	// Crashed for a height, but they keep their mempool and state.
	Partitioned
)

func (h Health) String() string {
	switch h {
	case Crashed:
		return "crashed"
	case Partitioned:
		return "partitioned"
	default:
		return "healthy"
	}
}

// ReplicaStatus is one row of the per-replica health report.
type ReplicaStatus struct {
	ID        network.ProcID
	Byzantine bool
	Health    Health
	Height    int // committed chain length (0 for Byzantine slots)
}

// Ledger orchestrates a fleet of replicas committing superblocks height by
// height. Correct replicas hold a mempool and a chain; Byzantine replica
// slots are silent (they simply never propose or vote — the worst a
// Byzantine process can do to liveness once safety is guaranteed by the
// consensus layer).
//
// The ledger degrades gracefully: replicas marked Crashed or Partitioned
// sit out a height (they are silent for that consensus instance) and the
// rest keep committing, provided Byzantine + unavailable replicas stay
// within the tolerance t. Recover catches a replica back up by state
// transfer — safe because superblocks are the deterministic output of the
// agreed vector, so any up-to-date peer's chain is the chain.
type Ledger struct {
	cfg      dbft.Config
	byz      map[network.ProcID]bool
	health   map[network.ProcID]Health
	mempools map[network.ProcID][]Tx
	chains   map[network.ProcID][]Block
	// MaxSteps bounds each height's consensus (0 = default 5,000,000).
	MaxSteps int

	// Faults, when set, injects the fault plan into every height's
	// consensus instance (lossy links, duplicates, delays, partitions —
	// the ledger-level entry point to internal/faults). TickInterval sets
	// the retransmission clock for those runs (0 = default 25).
	Faults       *faults.Plan
	TickInterval int

	// stores holds per-replica durable chain storage (see durable.go); nil
	// until EnableDurability.
	stores map[network.ProcID]*blockStore
}

// NewLedger creates a ledger with n replicas tolerating t Byzantine ones;
// the ids in byz behave Byzantine (silent).
func NewLedger(n, t int, byz []network.ProcID) (*Ledger, error) {
	cfg := dbft.Config{N: n, T: t, MaxRounds: 16}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 3*t && t > 0 {
		return nil, fmt.Errorf("blockchain: resilience requires n > 3t, got n=%d t=%d", n, t)
	}
	l := &Ledger{
		cfg:      cfg,
		byz:      map[network.ProcID]bool{},
		health:   map[network.ProcID]Health{},
		mempools: map[network.ProcID][]Tx{},
		chains:   map[network.ProcID][]Block{},
	}
	for _, id := range byz {
		if int(id) < 0 || int(id) >= n {
			return nil, fmt.Errorf("blockchain: byzantine id %d out of range", id)
		}
		l.byz[id] = true
	}
	if len(l.byz) > t {
		return nil, fmt.Errorf("blockchain: %d byzantine replicas exceed t=%d", len(l.byz), t)
	}
	for i := 0; i < n; i++ {
		id := network.ProcID(i)
		if !l.byz[id] {
			l.chains[id] = nil
		}
	}
	return l, nil
}

// Submit adds transactions to a replica's mempool (ignored for Byzantine
// slots).
func (l *Ledger) Submit(replica network.ProcID, txs ...Tx) {
	if l.byz[replica] {
		return
	}
	l.mempools[replica] = append(l.mempools[replica], txs...)
}

// Height reports the number of committed superblocks (the longest correct
// chain — lagging crashed replicas are behind it until they recover).
func (l *Ledger) Height() int {
	h := 0
	for _, chain := range l.chains {
		if len(chain) > h {
			h = len(chain)
		}
	}
	return h
}

// SetHealth marks a correct replica's availability. Crashed/Partitioned
// replicas sit out subsequent heights; committing remains possible while
// Byzantine + unavailable replicas stay within t.
func (l *Ledger) SetHealth(id network.ProcID, h Health) error {
	if int(id) < 0 || int(id) >= l.cfg.N {
		return fmt.Errorf("blockchain: replica %d out of range", id)
	}
	if l.byz[id] {
		return fmt.Errorf("blockchain: replica %d is Byzantine, not health-managed", id)
	}
	if h == Healthy {
		return l.Recover(id)
	}
	l.health[id] = h
	return nil
}

// Recover marks a replica healthy again and catches it up by state
// transfer: missing superblocks are copied from the longest chain (any
// up-to-date peer is authoritative — superblocks are the deterministic
// output of the agreed vector) and its mempool is pruned of transactions
// those blocks committed.
func (l *Ledger) Recover(id network.ProcID) error {
	if l.byz[id] {
		return fmt.Errorf("blockchain: replica %d is Byzantine, not health-managed", id)
	}
	delete(l.health, id)
	var ref []Block
	for _, chain := range l.chains {
		if len(chain) > len(ref) {
			ref = chain
		}
	}
	mine := l.chains[id]
	transferred := 0
	for h := len(mine); h < len(ref); h++ {
		block := ref[h]
		mine = append(mine, block)
		transferred++
		committed := map[Tx]bool{}
		for _, tx := range block.Txs {
			committed[tx] = true
		}
		var rest []Tx
		for _, tx := range l.mempools[id] {
			if !committed[tx] {
				rest = append(rest, tx)
			}
		}
		l.mempools[id] = rest
	}
	l.chains[id] = mine
	return l.persistRecover(id, transferred)
}

// Status reports per-replica health, sorted by id.
func (l *Ledger) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, l.cfg.N)
	for i := 0; i < l.cfg.N; i++ {
		id := network.ProcID(i)
		st := ReplicaStatus{ID: id, Byzantine: l.byz[id]}
		if !st.Byzantine {
			st.Health = l.health[id]
			st.Height = len(l.chains[id])
		}
		out = append(out, st)
	}
	return out
}

// available reports whether a correct replica participates in consensus.
func (l *Ledger) available(id network.ProcID) bool {
	return !l.byz[id] && l.health[id] == Healthy
}

// Chain returns a replica's chain.
func (l *Ledger) Chain(replica network.ProcID) []Block {
	return append([]Block(nil), l.chains[replica]...)
}

const txSep = "\x1f"

func encodeProposal(txs []Tx) string {
	parts := make([]string, len(txs))
	for i, tx := range txs {
		parts[i] = string(tx)
	}
	return strings.Join(parts, txSep)
}

func decodeProposal(s string) []Tx {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, txSep)
	out := make([]Tx, len(parts))
	for i, p := range parts {
		out[i] = Tx(p)
	}
	return out
}

// CommitHeight runs one vector consensus over the current mempools and
// appends the resulting superblock to every available replica's chain.
// Committed transactions leave those replicas' mempools. Crashed or
// partitioned replicas sit the height out (their slots run silent, like
// Byzantine ones); the height still commits as long as faulty + unavailable
// replicas stay within the tolerance t — the graceful-degradation envelope
// the resilience condition n > 3t buys.
func (l *Ledger) CommitHeight() (Block, error) {
	unavailable := 0
	for id := range l.health {
		if l.health[id] != Healthy {
			unavailable++
		}
	}
	if len(l.byz)+unavailable > l.cfg.T {
		return Block{}, fmt.Errorf("blockchain: %d byzantine + %d unavailable replicas exceed t=%d; cannot commit",
			len(l.byz), unavailable, l.cfg.T)
	}

	all := dbft.AllIDs(l.cfg.N)
	var participating []*dbft.VectorProcess
	procs := make([]network.Process, 0, l.cfg.N)
	for i := 0; i < l.cfg.N; i++ {
		id := network.ProcID(i)
		if !l.available(id) {
			procs = append(procs, &dbft.Silent{Id: id})
			continue
		}
		p, err := dbft.NewVectorProcess(id, encodeProposal(l.mempools[id]), l.cfg, all)
		if err != nil {
			return Block{}, err
		}
		participating = append(participating, p)
		procs = append(procs, p)
	}

	// Unavailable replicas are scheduled like Byzantine ones: their (empty)
	// traffic never blocks the fair schedule.
	silent := map[network.ProcID]bool{}
	for id := range l.byz {
		silent[id] = true
	}
	for id, h := range l.health {
		if h != Healthy {
			silent[id] = true
		}
	}
	var sched network.Scheduler = fairness.Scheduler{Byzantine: silent}
	var inj *faults.Injector
	if l.Faults != nil {
		inj = faults.NewInjector(*l.Faults, sched)
		sched = inj
		procs = inj.Wrap(procs)
	}
	sys, err := network.NewSystem(procs, sched)
	if err != nil {
		return Block{}, err
	}
	if inj != nil {
		inj.Install(sys)
		sys.TickInterval = l.TickInterval
		if sys.TickInterval <= 0 {
			sys.TickInterval = 25
		}
	}
	maxSteps := l.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 5_000_000
	}
	if _, err := sys.Run(maxSteps, func() bool { return dbft.AllVectorDecided(participating) }); err != nil {
		return Block{}, err
	}
	if !dbft.AllVectorDecided(participating) {
		return Block{}, fmt.Errorf("blockchain: height %d did not commit within the step budget", l.Height())
	}
	if err := dbft.VectorAgreement(participating); err != nil {
		return Block{}, err
	}

	// Build the superblock from the agreed vector: the union of committed
	// proposals, deduplicated, in deterministic order.
	vector, _ := participating[0].Decided()
	seen := map[Tx]bool{}
	var txs []Tx
	for _, proposal := range vector {
		for _, tx := range decodeProposal(proposal) {
			if !seen[tx] {
				seen[tx] = true
				txs = append(txs, tx)
			}
		}
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	block := Block{Height: l.Height(), Proposals: len(vector), Txs: txs}

	for id := range l.chains {
		if !l.available(id) {
			continue // lagging replicas catch up via Recover
		}
		l.chains[id] = append(l.chains[id], block)
		// Remove committed transactions from the mempool.
		var rest []Tx
		for _, tx := range l.mempools[id] {
			if !seen[tx] {
				rest = append(rest, tx)
			}
		}
		l.mempools[id] = rest
	}
	if err := l.persistCommit(block); err != nil {
		return Block{}, err
	}
	return block, nil
}

// VerifyChains checks that no two correct replicas fork: every chain must
// be a prefix of the longest one. Replicas that sat out heights while
// crashed or partitioned legitimately lag — lag is degradation, not a fork
// — so only a content mismatch at a shared height is an error. Use Status
// for the per-replica health and lag report.
func (l *Ledger) VerifyChains() error {
	var ref []Block
	var refID network.ProcID
	for id, chain := range l.chains {
		if len(chain) > len(ref) {
			ref, refID = chain, id
		}
	}
	for id, chain := range l.chains {
		for h := range chain {
			if !sameBlock(chain[h], ref[h]) {
				return fmt.Errorf("blockchain: fork at height %d between replicas %d and %d", h, refID, id)
			}
		}
		if len(chain) < len(ref) && l.health[id] == Healthy {
			return fmt.Errorf("blockchain: healthy replica %d lags at height %d (longest %d) — missed recovery",
				id, len(chain), len(ref))
		}
	}
	return nil
}

func sameBlock(a, b Block) bool {
	if a.Height != b.Height || len(a.Txs) != len(b.Txs) {
		return false
	}
	for i := range a.Txs {
		if a.Txs[i] != b.Txs[i] {
			return false
		}
	}
	return true
}
