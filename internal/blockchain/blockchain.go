// Package blockchain is the application layer the paper's verification
// ultimately protects: a Red-Belly-style replicated ledger. At every height
// each replica proposes a block of pending transactions; the DBFT vector
// consensus (internal/dbft) decides which proposals commit; their union
// forms the height's *superblock* — the Red Belly construction in which up
// to n proposals commit per consensus instance instead of one.
//
// Because the underlying binary consensus is the verified algorithm, the
// ledger inherits its guarantees: no fork with f <= t < n/3 under any
// schedule, and progress under the bv-broadcast fairness assumption.
package blockchain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dbft"
	"repro/internal/fairness"
	"repro/internal/network"
)

// Tx is a transaction payload.
type Tx string

// Block is one committed superblock.
type Block struct {
	Height int
	// Proposals records how many replica proposals the superblock merged.
	Proposals int
	Txs       []Tx
}

func (b Block) String() string {
	parts := make([]string, len(b.Txs))
	for i, tx := range b.Txs {
		parts[i] = string(tx)
	}
	return fmt.Sprintf("block %d (%d proposals): [%s]", b.Height, b.Proposals, strings.Join(parts, " "))
}

// Ledger orchestrates a fleet of replicas committing superblocks height by
// height. Correct replicas hold a mempool and a chain; Byzantine replica
// slots are silent (they simply never propose or vote — the worst a
// Byzantine process can do to liveness once safety is guaranteed by the
// consensus layer).
type Ledger struct {
	cfg      dbft.Config
	byz      map[network.ProcID]bool
	mempools map[network.ProcID][]Tx
	chains   map[network.ProcID][]Block
	// MaxSteps bounds each height's consensus (0 = default 5,000,000).
	MaxSteps int
}

// NewLedger creates a ledger with n replicas tolerating t Byzantine ones;
// the ids in byz behave Byzantine (silent).
func NewLedger(n, t int, byz []network.ProcID) (*Ledger, error) {
	cfg := dbft.Config{N: n, T: t, MaxRounds: 16}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 3*t && t > 0 {
		return nil, fmt.Errorf("blockchain: resilience requires n > 3t, got n=%d t=%d", n, t)
	}
	l := &Ledger{
		cfg:      cfg,
		byz:      map[network.ProcID]bool{},
		mempools: map[network.ProcID][]Tx{},
		chains:   map[network.ProcID][]Block{},
	}
	for _, id := range byz {
		if int(id) < 0 || int(id) >= n {
			return nil, fmt.Errorf("blockchain: byzantine id %d out of range", id)
		}
		l.byz[id] = true
	}
	if len(l.byz) > t {
		return nil, fmt.Errorf("blockchain: %d byzantine replicas exceed t=%d", len(l.byz), t)
	}
	for i := 0; i < n; i++ {
		id := network.ProcID(i)
		if !l.byz[id] {
			l.chains[id] = nil
		}
	}
	return l, nil
}

// Submit adds transactions to a replica's mempool (ignored for Byzantine
// slots).
func (l *Ledger) Submit(replica network.ProcID, txs ...Tx) {
	if l.byz[replica] {
		return
	}
	l.mempools[replica] = append(l.mempools[replica], txs...)
}

// Height reports the number of committed superblocks.
func (l *Ledger) Height() int {
	for id, chain := range l.chains {
		_ = id
		return len(chain)
	}
	return 0
}

// Chain returns a replica's chain.
func (l *Ledger) Chain(replica network.ProcID) []Block {
	return append([]Block(nil), l.chains[replica]...)
}

const txSep = "\x1f"

func encodeProposal(txs []Tx) string {
	parts := make([]string, len(txs))
	for i, tx := range txs {
		parts[i] = string(tx)
	}
	return strings.Join(parts, txSep)
}

func decodeProposal(s string) []Tx {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, txSep)
	out := make([]Tx, len(parts))
	for i, p := range parts {
		out[i] = Tx(p)
	}
	return out
}

// CommitHeight runs one vector consensus over the current mempools and
// appends the resulting superblock to every correct replica's chain.
// Committed transactions leave the mempools.
func (l *Ledger) CommitHeight() (Block, error) {
	all := dbft.AllIDs(l.cfg.N)
	var correct []*dbft.VectorProcess
	procs := make([]network.Process, 0, l.cfg.N)
	for i := 0; i < l.cfg.N; i++ {
		id := network.ProcID(i)
		if l.byz[id] {
			procs = append(procs, &dbft.Silent{Id: id})
			continue
		}
		p, err := dbft.NewVectorProcess(id, encodeProposal(l.mempools[id]), l.cfg, all)
		if err != nil {
			return Block{}, err
		}
		correct = append(correct, p)
		procs = append(procs, p)
	}
	sys, err := network.NewSystem(procs, fairness.Scheduler{Byzantine: l.byz})
	if err != nil {
		return Block{}, err
	}
	maxSteps := l.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 5_000_000
	}
	if _, err := sys.Run(maxSteps, func() bool { return dbft.AllVectorDecided(correct) }); err != nil {
		return Block{}, err
	}
	if !dbft.AllVectorDecided(correct) {
		return Block{}, fmt.Errorf("blockchain: height %d did not commit within the step budget", l.Height())
	}
	if err := dbft.VectorAgreement(correct); err != nil {
		return Block{}, err
	}

	// Build the superblock from the agreed vector: the union of committed
	// proposals, deduplicated, in deterministic order.
	vector, _ := correct[0].Decided()
	seen := map[Tx]bool{}
	var txs []Tx
	for _, proposal := range vector {
		for _, tx := range decodeProposal(proposal) {
			if !seen[tx] {
				seen[tx] = true
				txs = append(txs, tx)
			}
		}
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	block := Block{Height: l.Height(), Proposals: len(vector), Txs: txs}

	for id := range l.chains {
		l.chains[id] = append(l.chains[id], block)
		// Remove committed transactions from the mempool.
		var rest []Tx
		for _, tx := range l.mempools[id] {
			if !seen[tx] {
				rest = append(rest, tx)
			}
		}
		l.mempools[id] = rest
	}
	return block, nil
}

// VerifyChains checks that every correct replica holds the identical chain
// (no fork).
func (l *Ledger) VerifyChains() error {
	var ref []Block
	var refID network.ProcID
	first := true
	for id, chain := range l.chains {
		if first {
			ref, refID, first = chain, id, false
			continue
		}
		if len(chain) != len(ref) {
			return fmt.Errorf("blockchain: fork: replica %d at height %d, replica %d at height %d",
				refID, len(ref), id, len(chain))
		}
		for h := range chain {
			if !sameBlock(chain[h], ref[h]) {
				return fmt.Errorf("blockchain: fork at height %d between replicas %d and %d", h, refID, id)
			}
		}
	}
	return nil
}

func sameBlock(a, b Block) bool {
	if a.Height != b.Height || len(a.Txs) != len(b.Txs) {
		return false
	}
	for i := range a.Txs {
		if a.Txs[i] != b.Txs[i] {
			return false
		}
	}
	return true
}
