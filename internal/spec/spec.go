// Package spec defines the checkable query form that both verification
// back-ends (the parameterized schema checker of internal/schema and the
// explicit-state baseline of internal/counter) consume.
//
// A Query describes the NEGATION of an LTL property: the constraints a
// counterexample execution must satisfy. The supported shapes cover the LTL
// fragment the paper uses (Sections 3.2, 5.1, 5.2 and Appendix F):
//
//   - safety: ◇-witnesses ("some process visits the set", "shared variable
//     reaches a threshold") combined with □-premises ("location empty
//     initially / forever"),
//   - liveness: the same plus justice-stable final configurations where the
//     goal's location sets remain nonempty.
//
// The translation exploits three structural facts about rising-guard DAG
// automata, each checked statically by Validate:
//
//  1. "set S was visited" is equivalent to "S started nonempty or some rule
//     entered S from outside" (a linear flow condition);
//  2. emptiness of a predecessor-closed set is stable, so "□ S empty" is
//     violated iff S is nonempty in the final configuration;
//  3. every fair infinite execution eventually stutters in a justice-stable
//     configuration, so liveness counterexamples are reachable justice-stable
//     configurations violating the goal.
package spec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/ta"
)

// Kind classifies queries.
type Kind int

const (
	// Safety queries need no fairness: a finite run witnesses the violation.
	Safety Kind = iota + 1
	// Liveness queries require the final configuration to be justice-stable.
	Liveness
)

func (k Kind) String() string {
	switch k {
	case Safety:
		return "safety"
	case Liveness:
		return "liveness"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Query is the counterexample search problem for one property.
type Query struct {
	Name string
	Kind Kind

	// InitEmpty lists locations that must be empty in the initial
	// configuration (□-premises on locations with no incoming rules, e.g.
	// κ[V0]=0 in BV-Justification and Validity).
	InitEmpty []ta.LocID

	// GlobalEmpty lists locations that must be empty throughout the run
	// (□-premises on interior locations, e.g. κ[M0]=0 in Good). The checker
	// realizes this as "empty initially and no rule moves into it".
	GlobalEmpty []ta.LocID

	// VisitNonempty lists location sets that must each be visited: at some
	// point at least one process is inside (◇-witnesses such as ◇κ[D0]≠0 and
	// goal violations of always-emptiness such as ¬□κ[D1]=0).
	VisitNonempty []ta.LocSet

	// FinalShared lists rising constraints over shared variables and
	// parameters that must hold in the final configuration (◇-premises on
	// thresholds, e.g. b0 ≥ t+1 in BV-Obligation; rising means holding at
	// the end subsumes holding earlier).
	FinalShared []expr.Constraint

	// FinalNonempty lists predecessor-closed location sets that must be
	// nonempty in the final configuration (liveness goal violations: the set
	// that should have drained still holds a process).
	FinalNonempty []ta.LocSet

	// Justice lists the fairness requirements the final configuration must
	// satisfy for the stuttering extension to be a fair run. Only used when
	// Kind == Liveness.
	Justice []ta.Justice

	// RelaxResilience, when non-nil, replaces the automaton's resilience
	// condition (used to regenerate the paper's counterexample for n ≤ 3t).
	RelaxResilience []expr.Constraint
}

// Validate checks the structural prerequisites described in the package
// comment against the (one-round) automaton the query targets.
func (q *Query) Validate(a *ta.TA) error {
	if q.Name == "" {
		return fmt.Errorf("spec: query has no name")
	}
	if q.Kind != Safety && q.Kind != Liveness {
		return fmt.Errorf("spec: query %s has invalid kind", q.Name)
	}
	checkLoc := func(l ta.LocID) error {
		if l < 0 || int(l) >= len(a.Locations) {
			return fmt.Errorf("spec: query %s references out-of-range location %d", q.Name, l)
		}
		return nil
	}
	for _, l := range q.InitEmpty {
		if err := checkLoc(l); err != nil {
			return err
		}
		if !a.NoIncoming(l) {
			return fmt.Errorf("spec: query %s: InitEmpty location %s has incoming rules; use GlobalEmpty",
				q.Name, a.Locations[l].Name)
		}
	}
	for _, l := range q.GlobalEmpty {
		if err := checkLoc(l); err != nil {
			return err
		}
	}
	for _, s := range q.VisitNonempty {
		for l := range s {
			if err := checkLoc(l); err != nil {
				return err
			}
		}
	}
	for _, s := range q.FinalNonempty {
		for l := range s {
			if err := checkLoc(l); err != nil {
				return err
			}
		}
		if err := a.PredClosed(s); err != nil {
			return fmt.Errorf("spec: query %s: %w", q.Name, err)
		}
	}
	sharedOrParam := make(map[expr.Sym]bool)
	for _, s := range a.Shared {
		sharedOrParam[s] = true
	}
	for _, p := range a.Params {
		sharedOrParam[p] = true
	}
	for _, c := range q.FinalShared {
		if c.Op != expr.GE {
			return fmt.Errorf("spec: query %s: FinalShared constraints must be >=", q.Name)
		}
		for s, coeff := range c.L.Coeffs {
			if !sharedOrParam[s] {
				return fmt.Errorf("spec: query %s: FinalShared mentions unknown symbol", q.Name)
			}
			// rising in shared variables
			isParam := false
			for _, p := range a.Params {
				if p == s {
					isParam = true
				}
			}
			if !isParam && coeff < 0 {
				return fmt.Errorf("spec: query %s: FinalShared constraint is not rising", q.Name)
			}
		}
	}
	if q.Kind == Safety && len(q.Justice) > 0 {
		return fmt.Errorf("spec: query %s: safety queries must not carry justice requirements", q.Name)
	}
	for _, j := range q.Justice {
		if err := checkLoc(j.Loc); err != nil {
			return err
		}
	}
	return nil
}

// Outcome is the verdict for one property.
type Outcome int

const (
	// Holds means no counterexample exists: the property is verified for all
	// parameters admitted by the resilience condition.
	Holds Outcome = iota + 1
	// Violated means a counterexample was found (and replayed).
	Violated
	// Budget means the search budget was exhausted before a verdict — the
	// fate of the naive automaton in the paper's Table 2.
	Budget
)

func (o Outcome) String() string {
	switch o {
	case Holds:
		return "holds"
	case Violated:
		return "violated"
	case Budget:
		return "budget-exceeded"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}
