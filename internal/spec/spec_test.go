package spec

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/ta"
)

// fixture builds the automaton A --r1[true]/x++--> B --r2[x>=t+1]--> C with
// an extra initial location I (no outgoing rules).
func fixture(t *testing.T) *ta.TA {
	t.Helper()
	b := ta.NewBuilder("fixture")
	x := b.Shared("x")
	locA := b.Loc("A", ta.Initial())
	b.Loc("I", ta.Initial())
	locB := b.Loc("B")
	locC := b.Loc("C")
	b.Rule("r1", locA, locB, ta.Inc(x))
	b.Rule("r2", locB, locC,
		ta.Guarded(b.GeThreshold(x, b.Lin(1, ta.LinTerm{Coeff: 1, Sym: b.T()}))))
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestKindAndOutcomeStrings(t *testing.T) {
	if Safety.String() != "safety" || Liveness.String() != "liveness" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should embed the number")
	}
	if Holds.String() != "holds" || Violated.String() != "violated" || Budget.String() != "budget-exceeded" {
		t.Error("outcome strings wrong")
	}
	if !strings.Contains(Outcome(42).String(), "42") {
		t.Error("unknown outcome should embed the number")
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	a := fixture(t)
	q := Query{
		Name:          "ok",
		Kind:          Safety,
		InitEmpty:     []ta.LocID{a.MustLoc("I")},
		GlobalEmpty:   []ta.LocID{a.MustLoc("B")},
		VisitNonempty: []ta.LocSet{ta.NewLocSet(a.MustLoc("C"))},
	}
	if err := q.Validate(a); err != nil {
		t.Errorf("well-formed query rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	a := fixture(t)
	x, err := a.SharedByName("x")
	if err != nil {
		t.Fatal(err)
	}
	// A symbol in the automaton's table that is neither shared nor a
	// parameter must be rejected in FinalShared constraints.
	foreign := a.Table.Intern("alien")

	falling := expr.Term(x, -1) // -x >= 0 is not rising
	cases := []struct {
		name string
		q    Query
	}{
		{"no name", Query{Kind: Safety}},
		{"bad kind", Query{Name: "q", Kind: Kind(9)}},
		{"out of range loc", Query{Name: "q", Kind: Safety, InitEmpty: []ta.LocID{99}}},
		{"init-empty with incoming", Query{Name: "q", Kind: Safety, InitEmpty: []ta.LocID{a.MustLoc("B")}}},
		{"visit out of range", Query{Name: "q", Kind: Safety, VisitNonempty: []ta.LocSet{ta.NewLocSet(42)}}},
		{"final not pred-closed", Query{Name: "q", Kind: Liveness,
			FinalNonempty: []ta.LocSet{ta.NewLocSet(a.MustLoc("B"))}}},
		{"final shared equality", Query{Name: "q", Kind: Safety,
			FinalShared: []expr.Constraint{expr.EQZero(expr.Var(x))}}},
		{"final shared falling", Query{Name: "q", Kind: Safety,
			FinalShared: []expr.Constraint{expr.GEZero(falling)}}},
		{"final shared foreign symbol", Query{Name: "q", Kind: Safety,
			FinalShared: []expr.Constraint{expr.GEZero(expr.Var(foreign))}}},
		{"safety with justice", Query{Name: "q", Kind: Safety,
			Justice: []ta.Justice{{Name: "j", Loc: a.MustLoc("A")}}}},
		{"justice loc out of range", Query{Name: "q", Kind: Liveness,
			Justice: []ta.Justice{{Name: "j", Loc: 99}}}},
	}
	for _, c := range cases {
		if err := c.q.Validate(a); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidatePredClosedGoal(t *testing.T) {
	a := fixture(t)
	// {C} is predecessor-closed? r2 enters C from B — no. {B, C} — r1
	// enters B from A — no. {A, B, C} — nothing enters from outside — yes.
	q := Query{Name: "q", Kind: Liveness,
		FinalNonempty: []ta.LocSet{ta.NewLocSet(a.MustLoc("A"), a.MustLoc("B"), a.MustLoc("C"))}}
	if err := q.Validate(a); err != nil {
		t.Errorf("pred-closed goal rejected: %v", err)
	}
}
