// Benchmarks regenerating the paper's experimental section (Table 2 and the
// Section 6 counterexample), plus ablations for the design choices DESIGN.md
// calls out: staged vs full schema enumeration, parameterized checking vs
// explicit-state enumeration, and the executable-algorithm substrate.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/blockchain"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/dbft"
	"repro/internal/fairness"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/reduction"
	"repro/internal/schema"
	"repro/internal/spec"
	"repro/internal/ta"
)

func benchQuery(b *testing.B, a *ta.TA, queries []spec.Query, name string, mode schema.Mode) {
	b.Helper()
	benchQueryWorkers(b, a, queries, name, mode, 1)
}

func benchQueryWorkers(b *testing.B, a *ta.TA, queries []spec.Query, name string, mode schema.Mode, workers int) {
	b.Helper()
	var q *spec.Query
	for i := range queries {
		if queries[i].Name == name {
			q = &queries[i]
		}
	}
	if q == nil {
		b.Fatalf("no query %s", name)
	}
	engine, err := schema.New(a, schema.Options{Mode: mode, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.Check(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != spec.Holds {
			b.Fatalf("%s: %v", name, res.Outcome)
		}
	}
}

// BenchmarkTable2BV reproduces the bv-broadcast block of Table 2 (full
// schema enumeration, the mode whose schema counts the paper reports), at
// one worker and at NumCPU workers — the Table 2 wall-clock comparison of
// the parallel enumeration. Results are identical at both counts; only the
// wall clock moves.
func BenchmarkTable2BV(b *testing.B) {
	a := models.BVBroadcast()
	queries, err := models.BVQueries(a)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"BV-Just0", "BV-Obl0", "BV-Unif0", "BV-Term"} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("%s/j%d", name, workers), func(b *testing.B) {
				benchQueryWorkers(b, a, queries, name, schema.FullEnumeration, workers)
			})
		}
	}
}

// BenchmarkTable2Simplified reproduces the simplified-consensus block of
// Table 2 (staged engine).
func BenchmarkTable2Simplified(b *testing.B) {
	a := models.SimplifiedConsensus()
	queries, err := models.SimplifiedQueries(a)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"Inv1_0", "Inv2_0", "SRoundTerm", "Good_0", "Dec_0"} {
		b.Run(name, func(b *testing.B) {
			benchQuery(b, a, queries, name, schema.Staged)
		})
	}
}

// BenchmarkTable2NaiveExplosion reproduces the naive-consensus block: the
// benchmark measures how quickly the enumeration structurally exceeds the
// paper's 100,000-schema cutoff (the paper's >24h timeout).
func BenchmarkTable2NaiveExplosion(b *testing.B) {
	a := models.NaiveConsensus()
	queries, err := models.NaiveQueries(a)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		engine, err := schema.New(a, schema.Options{Mode: schema.FullEnumeration, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"Inv1_0", "Inv2_0", "SRoundTerm"} {
			var q *spec.Query
			for i := range queries {
				if queries[i].Name == name {
					q = &queries[i]
				}
			}
			b.Run(fmt.Sprintf("%s/j%d", name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := engine.Check(q)
					if err != nil {
						b.Fatal(err)
					}
					if res.Outcome != spec.Budget {
						b.Fatalf("%s: %v, want budget-exceeded", name, res.Outcome)
					}
				}
			})
		}
	}
}

// BenchmarkHolisticPipeline measures the full two-phase verification — the
// paper's "under 70 seconds" headline.
func BenchmarkHolisticPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.HolisticVerification(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Verified() {
			b.Fatal("pipeline did not verify")
		}
	}
}

// BenchmarkCounterexample measures the Section 6 experiment: the
// disagreement counterexample for n <= 3t (the paper reports ~4s).
func BenchmarkCounterexample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.GenerateInv1Counterexample(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != spec.Violated {
			b.Fatalf("outcome %v", res.Outcome)
		}
	}
}

// BenchmarkAblationStagedVsFull compares the two engines on the same
// property (BV-Unif0, the hardest bv-broadcast property): the design
// trade-off between exhaustive schema enumeration and lazy case splitting.
func BenchmarkAblationStagedVsFull(b *testing.B) {
	a := models.BVBroadcast()
	queries, err := models.BVQueries(a)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("staged", func(b *testing.B) {
		benchQuery(b, a, queries, "BV-Unif0", schema.Staged)
	})
	b.Run("full", func(b *testing.B) {
		benchQuery(b, a, queries, "BV-Unif0", schema.FullEnumeration)
	})
}

// BenchmarkAblationExplicitState shows the state explosion that motivates
// parameterized checking: explicit enumeration of the bv-broadcast state
// space for growing n (the staged engine covers ALL n in a few ms).
func BenchmarkAblationExplicitState(b *testing.B) {
	a := models.BVBroadcast()
	queries, err := models.BVQueries(a)
	if err != nil {
		b.Fatal(err)
	}
	var q *spec.Query
	for i := range queries {
		if queries[i].Name == "BV-Unif0" {
			q = &queries[i]
		}
	}
	cases := []struct{ n, t, f int64 }{
		{4, 1, 1}, {5, 1, 1}, {7, 2, 2},
	}
	for _, c := range cases {
		b.Run(benchName(c.n, c.t, c.f), func(b *testing.B) {
			sys, err := counter.NewSystem(a, counter.ParamsFor(a, c.n, c.t, c.f))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := counter.CheckQueryExplicit(sys, q, 0)
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcome != spec.Holds {
					b.Fatalf("outcome %v", res.Outcome)
				}
			}
		})
	}
}

func benchName(n, t, f int64) string {
	return "n" + itoa(n) + "_t" + itoa(t) + "_f" + itoa(f)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkSimulationFairRun measures the executable-algorithm substrate:
// one full DBFT consensus under the fairness scheduler with a Byzantine
// liar.
func BenchmarkSimulationFairRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := dbft.Config{N: 4, T: 1, MaxRounds: 12}
		all := dbft.AllIDs(cfg.N)
		correct, err := dbft.Processes(cfg, []int{0, 1, 1}, all)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		procs := []network.Process{
			correct[0], correct[1], correct[2],
			&dbft.RandomLiar{Id: 3, All: all, Rng: rng},
		}
		sys, err := network.NewSystem(procs, fairness.Scheduler{
			Byzantine: map[network.ProcID]bool{3: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		_, done, err := fairness.RunToDecision(sys, correct, 500000)
		if err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("no decision")
		}
	}
}

// BenchmarkLemma7 measures the Appendix B adversarial replay.
func BenchmarkLemma7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dbft.RunLemma7(10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorConsensus measures one DBFT vector-consensus decision
// (n proposals, one binary instance per proposer) under the fair scheduler.
func BenchmarkVectorConsensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := dbft.Config{N: 4, T: 1, MaxRounds: 14}
		all := dbft.AllIDs(cfg.N)
		var correct []*dbft.VectorProcess
		procs := make([]network.Process, 0, cfg.N)
		for p := 0; p < cfg.N; p++ {
			vp, err := dbft.NewVectorProcess(network.ProcID(p), "tx", cfg, all)
			if err != nil {
				b.Fatal(err)
			}
			correct = append(correct, vp)
			procs = append(procs, vp)
		}
		sys, err := network.NewSystem(procs, fairness.Scheduler{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(2_000_000, func() bool { return dbft.AllVectorDecided(correct) }); err != nil {
			b.Fatal(err)
		}
		if !dbft.AllVectorDecided(correct) {
			b.Fatal("vector consensus did not decide")
		}
	}
}

// BenchmarkBlockchainHeight measures one committed superblock of the
// Red-Belly-style ledger (vector consensus + superblock assembly).
func BenchmarkBlockchainHeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := blockchain.NewLedger(4, 1, []network.ProcID{3})
		if err != nil {
			b.Fatal(err)
		}
		l.Submit(0, "a")
		l.Submit(1, "b")
		l.Submit(2, "c")
		if _, err := l.CommitHeight(); err != nil {
			b.Fatal(err)
		}
		if err := l.VerifyChains(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundRigidReduction measures the Appendix A reordering plus
// double replay on a 150-step random multi-round run.
func BenchmarkRoundRigidReduction(b *testing.B) {
	a := models.SimplifiedConsensus()
	sys, err := reduction.NewSystem(a, counter.ParamsFor(a, 4, 1, 1), 3)
	if err != nil {
		b.Fatal(err)
	}
	init, err := sys.InitialConfig(map[ta.LocID]int64{a.MustLoc("V0"): 1, a.MustLoc("V1"): 2})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var steps []reduction.Step
	cur := init.Clone()
	for len(steps) < 150 {
		type cand struct{ round, rule int }
		var cands []cand
		for r := 0; r < sys.MaxRounds; r++ {
			for ri, rule := range a.Rules {
				if rule.SelfLoop() {
					continue
				}
				if en, _ := sys.Enabled(cur, r, ri); en {
					cands = append(cands, cand{r, ri})
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		pick := cands[rng.Intn(len(cands))]
		st := reduction.Step{Round: pick.round, Rule: pick.rule, Factor: 1}
		next, err := sys.Apply(cur, st)
		if err != nil {
			b.Fatal(err)
		}
		cur = next
		steps = append(steps, st)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Verify(init, steps); err != nil {
			b.Fatal(err)
		}
	}
}
