#!/bin/sh
# verify.sh — the tier-1+ gate: everything tier-1 runs (build + tests) plus
# vet, the race detector, fixed-seed chaos and storage-torture smokes, and
# the WAL fsync-path benchmark. Deterministic and offline; the
# race-instrumented suite dominates (a few minutes).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./internal/wal"
go test -race ./internal/wal

echo "==> go test -race ./internal/schema ./internal/core (parallel enumeration determinism)"
go test -race ./internal/schema ./internal/core

echo "==> go test -race ./..."
go test -race ./...

echo "==> chaos smoke (fixed seed, 25 runs)"
go run ./cmd/dbftsim -chaos -chaos-seeds 25 -seed 1 -n 4 -t 1

echo "==> storage torture smoke (fixed seed, 10 runs)"
go run ./cmd/dbftsim -torture -torture-seeds 10 -seed 1 -n 4 -t 1

echo "==> WAL append benchmark (fsync-path cost)"
go test -run '^$' -bench BenchmarkWALAppend -benchmem ./internal/wal

echo "verify: OK"
