#!/bin/sh
# verify.sh — the tier-1+ gate: everything tier-1 runs (build + tests) plus
# vet, the race detector, and a fixed-seed chaos smoke. Deterministic and
# offline; the race-instrumented suite dominates (a few minutes).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> chaos smoke (fixed seed, 25 runs)"
go run ./cmd/dbftsim -chaos -chaos-seeds 25 -seed 1 -n 4 -t 1

echo "verify: OK"
