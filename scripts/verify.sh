#!/bin/sh
# verify.sh — the tier-1+ gate: everything tier-1 runs (build + tests) plus
# vet, the race detector, fixed-seed chaos and storage-torture smokes, and
# the WAL fsync-path benchmark. Deterministic and offline; the
# race-instrumented suite dominates (a few minutes).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt check"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:"
    echo "$UNFORMATTED"
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./internal/wal"
go test -race ./internal/wal

echo "==> go test -race -run Incremental ./internal/smt ./internal/schema (incremental prefix-sharing)"
go test -short -race -run Incremental ./internal/smt ./internal/schema

echo "==> go test -race ./internal/schema ./internal/core (parallel enumeration determinism)"
go test -race ./internal/schema ./internal/core

echo "==> go test -race event-bus leg (queues, dupemap, stalls, gossip, flat-vs-bus identity)"
go test -race -run 'Bus|Native|Dupemap|Kadcast|Gossip|Stall|CopyOnEnqueue|Egress|QueueCap|Topic' ./internal/network
go test -short -race -run 'FingerprintsBusVsFlat|NativeFingerprint|Livelock' ./internal/faults

echo "==> go test -race ./..."
go test -race ./...

echo "==> chaos smoke (fixed seed, 25 runs)"
go run ./cmd/dbftsim -chaos -chaos-seeds 25 -seed 1 -n 4 -t 1

echo "==> storage torture smoke (fixed seed, 10 runs)"
go run ./cmd/dbftsim -torture -torture-seeds 10 -seed 1 -n 4 -t 1

echo "==> sba front-end leg (race-clean units + cross-validation vs specs/sba.ta)"
go test -race ./internal/sba
go test -race -run 'SBA' ./internal/faults ./internal/models ./internal/reduction

echo "==> sba chaos smoke (fixed seed, 25 runs)"
go run ./cmd/dbftsim -chaos -protocol sba -chaos-seeds 25 -seed 1 -n 4 -t 1

echo "==> sba replay smoke (flat-vs-bus fingerprint byte-identity)"
SBADIR=$(mktemp -d)
printf '{"protocol":"sba","n":4,"t":1,"max_rounds":12,"max_steps":120000,"tick":25,"inputs":[0,1,1],"byz":["liar"],"sched":"random","plan":{"seed":3,"drops":[{"prob":0.1,"budget":2}],"dup_prob":0.05,"delay_prob":0.05,"delay_steps":20,"crashes":[{"proc":0,"at":40,"recover":400}]}}' > "$SBADIR/bus.json"
printf '{"protocol":"sba","n":4,"t":1,"max_rounds":12,"max_steps":120000,"tick":25,"inputs":[0,1,1],"byz":["liar"],"sched":"random","sim":{"backend":"flat"},"plan":{"seed":3,"drops":[{"prob":0.1,"budget":2}],"dup_prob":0.05,"delay_prob":0.05,"delay_steps":20,"crashes":[{"proc":0,"at":40,"recover":400}]}}' > "$SBADIR/flat.json"
go run ./cmd/dbftsim -plan @"$SBADIR/bus.json" -fingerprint > "$SBADIR/bus.out"
go run ./cmd/dbftsim -plan @"$SBADIR/flat.json" -fingerprint > "$SBADIR/flat.out"
grep -q 'decided=true' "$SBADIR/bus.out" || { echo "sba smoke: seeded run undecided"; cat "$SBADIR/bus.out"; exit 1; }
grep -q 'agreement: ok' "$SBADIR/bus.out" || { echo "sba smoke: agreement violated"; cat "$SBADIR/bus.out"; exit 1; }
SFP1=$(awk '/^fingerprint:/{print $2}' "$SBADIR/bus.out")
SFP2=$(awk '/^fingerprint:/{print $2}' "$SBADIR/flat.out")
[ -n "$SFP1" ] && [ "$SFP1" = "$SFP2" ] || {
    echo "sba smoke: flat-vs-bus fingerprints diverge (bus=$SFP1 flat=$SFP2)"
    exit 1
}

echo "==> sba verification (staged determinism at -j 1 vs -j 8; full-mode incremental leg)"
go run ./cmd/holistic verify -model sba -j 1 -report "$SBADIR/sba1.json" > /dev/null
go run ./cmd/holistic verify -model sba -j 8 -report "$SBADIR/sba8.json" > /dev/null
go run ./cmd/obscheck "$SBADIR/sba1.json" "$SBADIR/sba8.json"
go run ./cmd/holistic verify -model sba -mode full -prop Quiet_0 > "$SBADIR/full.out"
go run ./cmd/holistic verify -model sba -mode full -prop Quiet_1 >> "$SBADIR/full.out"
[ "$(grep -c 'holds' "$SBADIR/full.out")" = "2" ] || {
    echo "sba verification: full-mode Quiet lemmas did not hold"; cat "$SBADIR/full.out"; exit 1
}
rm -rf "$SBADIR"

echo "==> simulator smoke (1k replicas, native drain; partitions 1 vs 2 byte-identity)"
SIMDIR=$(mktemp -d)
INPUTS=$(seq 1 1000 | awk '{printf "%s%d", (NR>1?",":""), NR%2}')
for P in 1 2; do
    printf '{"n":1000,"t":333,"max_rounds":12,"max_steps":40000,"tick":25,"inputs":[%s],"sched":"native","sim":{"queue_cap":4096,"dupemap":true,"stall_k":4000,"batch":8,"partitions":%d},"plan":{"seed":1,"drops":[{"prob":0.05,"budget":1}],"delay_prob":0.05,"delay_steps":16}}' \
        "$INPUTS" "$P" > "$SIMDIR/sim1k_p$P.json"
done
go run ./cmd/dbftsim -plan @"$SIMDIR/sim1k_p1.json" -fingerprint > "$SIMDIR/p1.out"
go run ./cmd/dbftsim -plan @"$SIMDIR/sim1k_p2.json" -fingerprint > "$SIMDIR/p2.out"
grep -q 'decided=true' "$SIMDIR/p1.out" || { echo "sim smoke: 1k-replica run undecided"; cat "$SIMDIR/p1.out"; exit 1; }
FP1=$(awk '/^fingerprint:/{print $2}' "$SIMDIR/p1.out")
FP2=$(awk '/^fingerprint:/{print $2}' "$SIMDIR/p2.out")
[ -n "$FP1" ] && [ "$FP1" = "$FP2" ] || {
    echo "sim smoke: native fingerprints diverge across partition counts (p1=$FP1 p2=$FP2)"
    exit 1
}
rm -rf "$SIMDIR"

echo "==> observability determinism (table2 -report at -j 1 vs -j 8)"
OBSDIR=$(mktemp -d)
trap 'rm -rf "$OBSDIR"' EXIT
go run ./cmd/holistic table2 -skip-naive -j 1 -report "$OBSDIR/r1.json" -trace "$OBSDIR/t1.jsonl" > /dev/null
go run ./cmd/holistic table2 -skip-naive -j 8 -report "$OBSDIR/r8.json" > /dev/null
go run ./cmd/obscheck -trace "$OBSDIR/t1.jsonl" "$OBSDIR/r1.json" "$OBSDIR/r8.json"

echo "==> service smoke (serve + verify -remote + cache semantics)"
SVC="$OBSDIR/svc"
mkdir -p "$SVC"
go build -o "$SVC/holistic" ./cmd/holistic
go build -o "$SVC/obscheck" ./cmd/obscheck
"$SVC/holistic" serve -addr 127.0.0.1:0 -addr-file "$SVC/addr" \
    -cache-dir "$SVC/cache" -report "$SVC/serve_report.json" 2> "$SVC/serve.log" &
SRV=$!
for _ in $(seq 1 100); do [ -s "$SVC/addr" ] && break; sleep 0.1; done
[ -s "$SVC/addr" ] || { echo "service smoke: daemon never bound"; cat "$SVC/serve.log"; exit 1; }
ADDR=$(head -n1 "$SVC/addr")
# Remote vs local: the deterministic report sections must be byte-identical.
"$SVC/holistic" verify -model simplified -report "$SVC/local.json" > /dev/null
"$SVC/holistic" verify -model simplified -remote "http://$ADDR" -report "$SVC/remote_cold.json" > "$SVC/cold.out"
"$SVC/obscheck" "$SVC/local.json" "$SVC/remote_cold.json"
grep -q '\[cached\]' "$SVC/cold.out" && { echo "service smoke: cold run claimed cache hits"; exit 1; }
# The warm repeat must be served from the cache and still byte-match.
"$SVC/holistic" verify -model simplified -remote "http://$ADDR" -report "$SVC/remote_warm.json" > "$SVC/warm.out"
grep -q '\[cached\]' "$SVC/warm.out" || { echo "service smoke: warm run not served from cache"; exit 1; }
"$SVC/obscheck" "$SVC/local.json" "$SVC/remote_warm.json"
# Graceful SIGTERM drain must flush a valid report.
kill -TERM "$SRV"
wait "$SRV" || { echo "service smoke: daemon exited non-zero on drain"; cat "$SVC/serve.log"; exit 1; }
"$SVC/obscheck" "$SVC/serve_report.json"
# Truncate every cache entry: a fresh daemon must detect the damage, log it,
# and re-verify rather than serve a torn verdict.
for f in "$SVC/cache"/*.vce; do
    head -c 21 "$f" > "$f.t" && mv "$f.t" "$f"
done
"$SVC/holistic" serve -addr 127.0.0.1:0 -addr-file "$SVC/addr2" -cache-dir "$SVC/cache" 2> "$SVC/serve2.log" &
SRV2=$!
for _ in $(seq 1 100); do [ -s "$SVC/addr2" ] && break; sleep 0.1; done
ADDR2=$(head -n1 "$SVC/addr2")
"$SVC/holistic" verify -model simplified -prop Inv2_0 -remote "http://$ADDR2" > "$SVC/corrupt.out"
grep -q '\[cached\]' "$SVC/corrupt.out" && { echo "service smoke: truncated entry served as a hit"; exit 1; }
grep -q 'corrupt entry' "$SVC/serve2.log" || { echo "service smoke: corruption not logged"; cat "$SVC/serve2.log"; exit 1; }
kill -TERM "$SRV2"
wait "$SRV2" || true
# Warm-vs-cold latency through the service: >= 10x on the heaviest row.
"$SVC/holistic" loadgen -models simplified -passes 2 -min-speedup 10 -out "$SVC/BENCH_service.json" > /dev/null

echo "==> cluster smoke (coordinator + 2 workers, SIGKILL one mid-run)"
CLU="$OBSDIR/cluster"
mkdir -p "$CLU"
# Single-box full-mode reference for the byte-identical assertion.
"$SVC/holistic" verify -model bv -mode full -j 2 -report "$CLU/local.json" > /dev/null
"$SVC/holistic" cluster -model bv -addr 127.0.0.1:0 -addr-file "$CLU/addr" \
    -lease 500ms -idle-local 1h -journal "$CLU/journal" \
    -report "$CLU/cluster.json" -stats > "$CLU/cluster.out" 2> "$CLU/cluster.log" &
CO=$!
for _ in $(seq 1 100); do [ -s "$CLU/addr" ] && break; sleep 0.1; done
[ -s "$CLU/addr" ] || { echo "cluster smoke: coordinator never bound"; cat "$CLU/cluster.log"; exit 1; }
CADDR=$(head -n1 "$CLU/addr")
"$SVC/holistic" work -coordinator "http://$CADDR" -id w1 -j 1 -quiet 2> /dev/null &
W1=$!
"$SVC/holistic" work -coordinator "http://$CADDR" -id w2 -j 1 -quiet 2> /dev/null &
W2=$!
# Let the pool claim leases, then SIGKILL one worker mid-run: its lease must
# expire and the shard reissue without disturbing the verdict.
sleep 1
kill -9 "$W1" 2> /dev/null || true
wait "$CO" || { echo "cluster smoke: coordinator failed"; cat "$CLU/cluster.log"; exit 1; }
kill "$W2" 2> /dev/null || true
# The cluster's deterministic report section must byte-match the local run.
"$SVC/obscheck" "$CLU/local.json" "$CLU/cluster.json"

echo "==> queue smoke (durable enqueue + SIGKILL mid-drain + resume + dead-letter)"
QUE="$OBSDIR/queue"
mkdir -p "$QUE"
# Synchronous reference: the report the drained queue must byte-match.
"$SVC/holistic" verify -model simplified -prop Inv1_0 -report "$QUE/sync.json" > /dev/null
# Daemon A: one consumer, fault injection dead-letters every Inv1_1 job.
"$SVC/holistic" serve -addr 127.0.0.1:0 -addr-file "$QUE/addr" -cache-dir "$QUE/cache" \
    -queue-dir "$QUE/queue" -queue-consumers 1 -queue-fail-prop Inv1_1 2> "$QUE/serveA.log" &
QA=$!
for _ in $(seq 1 100); do [ -s "$QUE/addr" ] && break; sleep 0.1; done
[ -s "$QUE/addr" ] || { echo "queue smoke: daemon A never bound"; cat "$QUE/serveA.log"; exit 1; }
QADDR=$(head -n1 "$QUE/addr")
# Eight distinct durable jobs plus one poison job; acks are fsync-backed.
for i in $(seq 1 8); do
    "$SVC/holistic" queue -url "http://$QADDR" -enqueue \
        -model simplified -prop Inv1_0 -tenant "t$((i % 3))" -tag "job$i" -force > /dev/null
done
"$SVC/holistic" queue -url "http://$QADDR" -enqueue \
    -model simplified -prop Inv1_1 -tenant poison -tag boom -force > /dev/null
# SIGKILL mid-drain: no drain hook runs; the journal is all that survives.
kill -9 "$QA" 2> /dev/null || true
wait "$QA" 2> /dev/null || true
# Daemon B on the same directories replays and finishes the backlog. The
# extra ninth job guarantees B serves at least one Inv1_0 verification even
# if A drained unusually fast, so its report deterministically has the row.
"$SVC/holistic" serve -addr 127.0.0.1:0 -addr-file "$QUE/addr2" -cache-dir "$QUE/cache" \
    -queue-dir "$QUE/queue" -queue-consumers 1 -queue-fail-prop Inv1_1 \
    -report "$QUE/daemon_report.json" 2> "$QUE/serveB.log" &
QB=$!
for _ in $(seq 1 100); do [ -s "$QUE/addr2" ] && break; sleep 0.1; done
[ -s "$QUE/addr2" ] || { echo "queue smoke: daemon B never bound"; cat "$QUE/serveB.log"; exit 1; }
QADDR2=$(head -n1 "$QUE/addr2")
"$SVC/holistic" queue -url "http://$QADDR2" -enqueue \
    -model simplified -prop Inv1_0 -tenant t0 -tag job9 -force > /dev/null
"$SVC/holistic" queue -url "http://$QADDR2" -wait-idle -timeout 120s > "$QUE/status.out"
# No job lost or forgotten: all nine Inv1_0 jobs done, the poison job dead.
grep -q 'done=9' "$QUE/status.out" || { echo "queue smoke: backlog not fully drained"; cat "$QUE/status.out"; exit 1; }
grep -q 'dead=1' "$QUE/status.out" || { echo "queue smoke: poison job not dead-lettered"; cat "$QUE/status.out"; exit 1; }
"$SVC/holistic" queue -url "http://$QADDR2" -dead > "$QUE/dead.out"
grep -q 'fault injection' "$QUE/dead.out" || { echo "queue smoke: dead letter lost its reason"; cat "$QUE/dead.out"; exit 1; }
kill -TERM "$QB"
wait "$QB" || { echo "queue smoke: daemon B exited non-zero on drain"; cat "$QUE/serveB.log"; exit 1; }
# Queue-drained verdicts must be byte-identical to the synchronous run.
"$SVC/obscheck" "$QUE/sync.json" "$QUE/daemon_report.json"

echo "==> WAL append benchmark (fsync-path cost)"
go test -run '^$' -bench BenchmarkWALAppend -benchmem ./internal/wal

echo "verify: OK"
