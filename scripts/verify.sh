#!/bin/sh
# verify.sh — the tier-1+ gate: everything tier-1 runs (build + tests) plus
# vet, the race detector, fixed-seed chaos and storage-torture smokes, and
# the WAL fsync-path benchmark. Deterministic and offline; the
# race-instrumented suite dominates (a few minutes).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./internal/wal"
go test -race ./internal/wal

echo "==> go test -race ./internal/schema ./internal/core (parallel enumeration determinism)"
go test -race ./internal/schema ./internal/core

echo "==> go test -race ./..."
go test -race ./...

echo "==> chaos smoke (fixed seed, 25 runs)"
go run ./cmd/dbftsim -chaos -chaos-seeds 25 -seed 1 -n 4 -t 1

echo "==> storage torture smoke (fixed seed, 10 runs)"
go run ./cmd/dbftsim -torture -torture-seeds 10 -seed 1 -n 4 -t 1

echo "==> observability determinism (table2 -report at -j 1 vs -j 8)"
OBSDIR=$(mktemp -d)
trap 'rm -rf "$OBSDIR"' EXIT
go run ./cmd/holistic table2 -skip-naive -j 1 -report "$OBSDIR/r1.json" -trace "$OBSDIR/t1.jsonl" > /dev/null
go run ./cmd/holistic table2 -skip-naive -j 8 -report "$OBSDIR/r8.json" > /dev/null
go run ./cmd/obscheck -trace "$OBSDIR/t1.jsonl" "$OBSDIR/r1.json" "$OBSDIR/r8.json"

echo "==> WAL append benchmark (fsync-path cost)"
go test -run '^$' -bench BenchmarkWALAppend -benchmem ./internal/wal

echo "verify: OK"
