// Verifybroadcast: model-check the binary value broadcast from its LTL
// specification text, in both engine modes.
//
// The example parses the ByMC-style property file bundled in internal/ltl
// (the Section 3.2 properties), compiles each property into a
// counterexample query against the Fig. 2 automaton, and checks it twice:
// with full schema enumeration (the mode whose schema counts Table 2
// reports) and with the staged engine. It also demonstrates counterexample
// generation by dropping the premise of BV-Justification.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/ltl"
	"repro/internal/models"
	"repro/internal/schema"
	"repro/internal/spec"
	"repro/internal/ta"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "verifybroadcast:", err)
		os.Exit(1)
	}
}

func run() error {
	a := models.BVBroadcast()
	fmt.Printf("model: %s\n\n", a)

	pf, err := ltl.ParseFile(ltl.BVBroadcastSpec)
	if err != nil {
		return err
	}
	queries, err := ltl.CompileFile(pf, a)
	if err != nil {
		return err
	}

	for _, mode := range []schema.Mode{schema.FullEnumeration, schema.Staged} {
		engine, err := schema.New(a, schema.Options{Mode: mode})
		if err != nil {
			return err
		}
		fmt.Printf("--- %v enumeration ---\n", mode)
		total := time.Duration(0)
		for i := range queries {
			res, err := engine.Check(&queries[i])
			if err != nil {
				return err
			}
			total += res.Elapsed
			fmt.Printf("%-12s %-8s %6d schemas  %v\n",
				res.Query, res.Outcome, res.Schemas, res.Elapsed.Round(time.Millisecond))
		}
		fmt.Printf("total: %v\n\n", total.Round(time.Millisecond))
	}

	// Mutation: drop the premise of BV-Justification. Without "no correct
	// process proposed 0", delivering 0 is of course possible, and the
	// checker produces a concrete execution, replayed and certified.
	delivered, err := a.LocSetByName("C0", "CB0", "C01")
	if err != nil {
		return err
	}
	q := spec.Query{
		Name:          "BV-Just0-without-premise",
		Kind:          spec.Safety,
		VisitNonempty: []ta.LocSet{delivered},
	}
	engine, err := schema.New(a, schema.Options{})
	if err != nil {
		return err
	}
	res, err := engine.Check(&q)
	if err != nil {
		return err
	}
	fmt.Printf("--- mutation check: %s ---\n%s\n", q.Name, res.Outcome)
	if res.CE != nil {
		fmt.Print(res.CE.Format())
	}
	return nil
}
