// Quickstart: run the paper's holistic verification pipeline end to end.
//
// Phase 1 model-checks the binary value broadcast automaton (Fig. 2) for
// any n > 3t >= 3f; phase 2 model-checks the simplified consensus automaton
// (Fig. 4) whose fairness assumptions are the properties proven in phase 1.
// The pipeline concludes Agreement, Validity (unconditionally) and
// Termination (under the bv-broadcast fairness assumption) — Theorem 6.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	report, err := core.HolisticVerification(core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Print(report.Format())
	if report.Verified() {
		fmt.Println("\nThe DBFT binary consensus of the Red Belly Blockchain is verified")
		fmt.Println("for every number of processes n and every f <= t < n/3.")
	}
}
