// Fairconsensus: DBFT terminating under the fairness assumption, with a
// round-rigidity check on the recorded execution.
//
// The example runs the executable DBFT consensus against a Byzantine liar
// under the fairness-realizing scheduler, reports the good-round witness of
// Definition 3 and the decisions, and then demonstrates the Appendix A
// reduction on the counter-system side: a random asynchronous multi-round
// run of the simplified automaton is reordered into its round-rigid form and
// replayed to the same final configuration.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/counter"
	"repro/internal/dbft"
	"repro/internal/fairness"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/reduction"
	"repro/internal/ta"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fairconsensus:", err)
		os.Exit(1)
	}
}

func run() error {
	// Part 1: a fair execution of the real algorithm.
	cfg := dbft.Config{N: 4, T: 1, MaxRounds: 12}
	all := dbft.AllIDs(cfg.N)
	inputs := []int{0, 1, 1}
	correct, err := dbft.Processes(cfg, inputs, all)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2024))
	procs := []network.Process{
		correct[0], correct[1], correct[2],
		&dbft.RandomLiar{Id: 3, All: all, Rng: rng},
	}
	sys, err := network.NewSystem(procs, fairness.Scheduler{
		Byzantine: map[network.ProcID]bool{3: true},
	})
	if err != nil {
		return err
	}
	steps, done, err := fairness.RunToDecision(sys, correct, 500000)
	if err != nil {
		return err
	}
	fmt.Printf("DBFT n=4 t=1, inputs %v, Byzantine liar, fair scheduler: %d deliveries\n", inputs, steps)
	fmt.Print(dbft.Describe(correct))
	if !done {
		return fmt.Errorf("no decision — the fair scheduler should terminate")
	}
	if g := fairness.FirstGoodRound(correct, cfg.MaxRounds); g >= 0 {
		fmt.Printf("fairness witness (Def. 3): round %d was %d-good\n", g, g%2)
	}

	// Part 2: round-rigid reduction on the simplified automaton.
	fmt.Println("\nAppendix A reduction on a random multi-round counter-system run:")
	a := models.SimplifiedConsensus()
	msys, err := reduction.NewSystem(a, counter.ParamsFor(a, 4, 1, 1), 3)
	if err != nil {
		return err
	}
	init, err := msys.InitialConfig(map[ta.LocID]int64{
		a.MustLoc("V0"): 1, a.MustLoc("V1"): 2,
	})
	if err != nil {
		return err
	}
	steps2 := randomRun(msys, init, rng, 150)
	rigid, err := msys.Verify(init, steps2)
	if err != nil {
		return err
	}
	fmt.Printf("random asynchronous run: %d steps; round-rigid reordering replays to the\n", len(steps2))
	fmt.Printf("same final configuration (rigid: %v)\n", reduction.IsRoundRigid(rigid))
	return nil
}

func randomRun(s *reduction.System, init reduction.Config, rng *rand.Rand, maxSteps int) []reduction.Step {
	var steps []reduction.Step
	cur := init.Clone()
	for i := 0; i < maxSteps; i++ {
		type cand struct{ round, rule int }
		var cands []cand
		for r := 0; r < s.MaxRounds; r++ {
			for ri, rule := range s.TA.Rules {
				if rule.SelfLoop() {
					continue
				}
				if en, err := s.Enabled(cur, r, ri); err == nil && en {
					cands = append(cands, cand{r, ri})
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		pick := cands[rng.Intn(len(cands))]
		st := reduction.Step{Round: pick.round, Rule: pick.rule, Factor: 1}
		next, err := s.Apply(cur, st)
		if err != nil {
			break
		}
		cur = next
		steps = append(steps, st)
	}
	return steps
}
