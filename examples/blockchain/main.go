// Blockchain: the application the verification protects — a Red-Belly-style
// replicated ledger committing superblocks through the DBFT vector
// consensus, which in turn runs one verified binary consensus per proposal.
//
// Four replicas (one Byzantine and silent) receive transactions into their
// mempools; every height commits the union of the accepted proposals as one
// superblock. The chains of all correct replicas are bit-for-bit identical:
// no fork is possible with f <= t < n/3, by the very Agreement property the
// holistic pipeline verifies for all parameters.
package main

import (
	"fmt"
	"os"

	"repro/internal/blockchain"
	"repro/internal/network"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blockchain:", err)
		os.Exit(1)
	}
}

func run() error {
	ledger, err := blockchain.NewLedger(4, 1, []network.ProcID{3})
	if err != nil {
		return err
	}
	fmt.Println("Red-Belly-style ledger: n=4 replicas, t=1, replica 3 Byzantine (silent)")

	workload := [][]struct {
		replica network.ProcID
		tx      blockchain.Tx
	}{
		{{0, "alice->bob:10"}, {1, "bob->carol:5"}, {2, "carol->dan:2"}},
		{{0, "dan->alice:7"}, {1, "alice->carol:1"}, {2, "bob->dan:3"}},
		{{0, "carol->alice:4"}, {1, "dan->bob:6"}, {2, "alice->dan:9"}},
	}

	for h, batch := range workload {
		for _, s := range batch {
			ledger.Submit(s.replica, s.tx)
		}
		block, err := ledger.CommitHeight()
		if err != nil {
			return err
		}
		fmt.Printf("committed %s\n", block)
		_ = h
	}

	if err := ledger.VerifyChains(); err != nil {
		return err
	}
	fmt.Println("\nall correct replicas hold identical chains — no fork.")
	fmt.Println("replica 0's chain:")
	for _, b := range ledger.Chain(0) {
		fmt.Printf("  %s\n", b)
	}
	return nil
}
