// Byzantineattack: what happens when Byzantine processes reach a third of
// the system — shown twice, at the model level and at the execution level.
//
// First the parameterized checker relaxes the resilience condition from
// n > 3t to n > 2t and produces a symbolic disagreement counterexample to
// Inv1_0 (the Section 6 experiment), certified by replay on the counter
// system. Then the simulator runs the matching concrete attack: n = 4 with
// two coordinated equivocators against two correct processes drives the
// correct processes to decide opposite values.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dbft"
	"repro/internal/network"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "byzantineattack:", err)
		os.Exit(1)
	}
}

func run() error {
	// Part 1: the model-level counterexample.
	res, err := core.GenerateInv1Counterexample(core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("model check of Inv1_0 with resilience relaxed to n > 2t: %s (%v)\n",
		res.Outcome, res.Elapsed.Round(time.Millisecond))
	if res.CE != nil {
		fmt.Println("symbolic disagreement execution (replayed and certified):")
		fmt.Print(res.CE.Format())
	}

	// Part 2: the concrete attack on the executable algorithm.
	fmt.Println("\nsimulated attack: n=4, t=1 but f=2 coordinated equivocators")
	cfg := dbft.Config{N: 4, T: 1, MaxRounds: 8}
	all := dbft.AllIDs(cfg.N)
	inputs := []int{0, 1}
	correct, err := dbft.Processes(cfg, inputs, all)
	if err != nil {
		return err
	}
	zeroSide := func(p network.ProcID) bool { return p == 0 }
	procs := []network.Process{
		correct[0], correct[1],
		&dbft.Equivocator{Id: 2, All: all, ZeroSide: zeroSide},
		&dbft.Equivocator{Id: 3, All: all, ZeroSide: zeroSide},
	}
	sys, err := network.NewSystem(procs, network.FIFOScheduler{})
	if err != nil {
		return err
	}
	if _, err := sys.Run(100000, func() bool { return dbft.AllDecided(correct) }); err != nil {
		return err
	}
	fmt.Print(dbft.Describe(correct))
	if err := dbft.Agreement(correct); err != nil {
		fmt.Println("=>", err)
	} else {
		return fmt.Errorf("attack unexpectedly failed to break agreement")
	}
	return nil
}
