// Fault-tolerant distributed verification: start a coordinator in-process,
// let a worker claim a shard over HTTP and crash (here: claim and never
// heartbeat, which is all a crash looks like from the coordinator's side),
// and watch the verdict come out byte-identical to a single-box run anyway.
//
// The coordinator serializes the deterministic preorder of schema contexts
// into content-addressed shards; workers claim shards under time-bounded
// leases and heartbeat while solving. A crashed worker simply stops
// heartbeating: its lease expires, the shard is reissued to a surviving
// worker, and because per-index records are process-independent facts the
// final fold cannot tell the difference. The journal records the whole
// story — this example prints the killed worker's assign → expire → assign
// history at the end.
//
// The same pieces are available from the command line:
//
//	holistic cluster -model bv -addr 127.0.0.1:9091 -journal /tmp/cluster-journal
//	holistic work -coordinator http://127.0.0.1:9091 -j 2
//	holistic clusterbench -out BENCH_cluster.json
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	// A short lease keeps the demo quick: a real deployment uses seconds.
	memfs := wal.NewMemFS()
	coord, err := cluster.New(cluster.Config{
		LeaseTTL:       500 * time.Millisecond,
		ShardSize:      8,
		IdleLocalAfter: time.Hour, // stay distributed; don't drain locally
		JournalDir:     "journal",
		JournalFS:      memfs,
		JournalSync:    wal.SyncNever,
		Logf: func(format string, args ...any) {
			fmt.Printf("  coord: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := service.HardenServer(&http.Server{Handler: coord.Handler()})
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("coordinator on %s\n", base)

	payload := cluster.JobPayload{Model: "bv", Prop: "BV-Just0"}
	jobID, err := coord.Submit(payload)
	if err != nil {
		return err
	}
	fmt.Printf("submitted job %s (%s/%s)\n\n", jobID[:12], payload.Model, payload.Prop)

	// The doomed worker: claim a shard over the wire, then vanish without a
	// heartbeat — to the coordinator this is indistinguishable from a crash,
	// a hang, or a network partition, which is the point of leases.
	hc := &service.HTTPClient{}
	var claim cluster.ClaimResponse
	if _, err := hc.DoJSON(context.Background(), http.MethodPost, base+"/v1/cluster/claim",
		map[string]string{"worker": "doomed"}, &claim); err != nil {
		return err
	}
	fmt.Printf("worker \"doomed\" claimed shard %d under lease %s... and crashed\n\n", claim.Shard, claim.Lease[:8])

	// The survivor does the actual work, including the reissued shard.
	w2 := &cluster.Worker{Coordinator: base, ID: "survivor", Workers: 1, PollInterval: 20 * time.Millisecond}
	w2done := make(chan struct{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() { defer close(w2done); w2.Run(ctx) }()

	res, err := coord.Wait(ctx, jobID)
	if err != nil {
		return err
	}
	cancel()
	<-w2done
	fmt.Printf("\ncluster verdict: %v  (%d schemas, survivor solved %d shards)\n",
		res.Outcome, res.Schemas, w2.ShardsSolved.Load())

	// The single-box run the cluster must reproduce byte-identically.
	a, _, q, err := payload.Resolve()
	if err != nil {
		return err
	}
	eng, err := schema.New(a, schema.Options{Mode: schema.FullEnumeration, Workers: runtime.NumCPU()})
	if err != nil {
		return err
	}
	ref, err := eng.Check(q)
	if err != nil {
		return err
	}
	if diff := cluster.CompareResults(payload.Model, ref, res); diff != "" {
		return fmt.Errorf("cluster diverged from single box: %s", diff)
	}
	fmt.Println("single-box comparison: identical verdict, schema count and solver stats")

	// The journal tells the recovery story: the doomed worker's shard shows
	// assign → expire → assign.
	recs, err := cluster.ReadJournal(memfs, "journal")
	if err != nil {
		return err
	}
	reissued := map[int]bool{}
	for _, r := range recs {
		if r.T == "expire" {
			reissued[r.Shard] = true
		}
	}
	fmt.Printf("\njournal: %d records; reissue history of the doomed worker's shards:\n", len(recs))
	for _, r := range recs {
		if (r.T == "assign" || r.T == "expire") && reissued[r.Shard] {
			fmt.Printf("  %-6s shard %d  worker=%s attempt=%d\n", r.T, r.Shard, r.Worker, r.Attempt)
		}
	}
	return nil
}
