// Verification as a service: start the HTTP serving plane in-process,
// submit the same request twice, and watch the second one come back from
// the content-addressed result cache.
//
// The server content-addresses every request — a SHA-256 over the canonical
// forms of the automaton, the property, the engine configuration and the
// engine version — so identical verification problems share one verdict:
// concurrent duplicates coalesce onto a single engine run (singleflight),
// and later duplicates are answered from the cache without solving at all.
// Cached "violated" verdicts are re-certified by replaying their
// counterexample before being served, so a cache can cost time but never a
// wrong answer.
//
// The same daemon is available from the command line:
//
//	holistic serve -addr 127.0.0.1:8123 -cache-dir /tmp/vcache
//	holistic verify -model simplified -remote http://127.0.0.1:8123
//	holistic loadgen -url http://127.0.0.1:8123
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/service"
	"repro/internal/vcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
}

func run() error {
	cacheDir, err := os.MkdirTemp("", "service-example-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	cache, err := vcache.Open(vcache.Options{Dir: cacheDir})
	if err != nil {
		return err
	}

	srv := service.New(service.Config{Cache: cache})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (engine %s)\n\n", base, vcache.EngineVersion)

	req := service.VerifyRequest{Model: "simplified", Prop: "Inv1_0"}
	for _, phase := range []string{"cold", "warm"} {
		start := time.Now()
		resp, err := post(base, req)
		if err != nil {
			return err
		}
		r := resp.Results[0]
		fmt.Printf("%-4s  %s/%s: %s  (%d schemas, %v, cached=%v)\n",
			phase, r.Model, r.Query, r.Outcome, r.Schemas,
			time.Since(start).Round(time.Millisecond), r.Cached)
	}
	fmt.Printf("\nengine runs for two identical requests: %d\n", srv.EngineRuns())
	return nil
}

func post(base string, req service.VerifyRequest) (*service.VerifyResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpResp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server returned %d", httpResp.StatusCode)
	}
	var resp service.VerifyResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
