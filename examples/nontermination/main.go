// Nontermination: replay the Appendix B (Lemma 7) execution showing why the
// fairness assumption of Section 3.3 is necessary.
//
// With n = 4, t = 1 and one Byzantine process, an adversarial message
// schedule keeps the three correct processes' estimates cycling forever:
// in every round, exactly one process receives a singleton qualifier set
// holding the wrong parity (so it neither decides nor adopts the parity),
// while the other two receive mixed qualifiers and adopt the parity — which
// the next round flips again.
package main

import (
	"fmt"
	"os"

	"repro/internal/dbft"
)

func main() {
	const rounds = 16
	results, err := dbft.RunLemma7(rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nontermination:", err)
		os.Exit(1)
	}
	fmt.Println("Lemma 7 (Appendix B): DBFT under an unfair schedule, n=4, t=1, f=1.")
	fmt.Println("Estimates of the three correct processes at the end of each round:")
	for _, r := range results {
		fmt.Printf("  round %2d (parity %d): %v\n", r.Round, r.Round%2, r.Estimates)
	}
	fmt.Printf("\n%d rounds, no decision; the estimate multiset alternates with period 2.\n", rounds)
	fmt.Println("Under the fair bv-broadcast assumption this cannot happen: some round r")
	fmt.Println("is (r mod 2)-good, all correct processes then start round r+1 with the")
	fmt.Println("same estimate (Lemma 4), and every process decides by round r+2.")
}
